// Tests of the run-control subsystem: cooperative cancellation, deadlines,
// result/node budgets, progress reporting, termination reasons across every
// algorithm (serial and parallel), and Options::Validate rejections.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "api/mbe.h"
#include "core/run_control.h"
#include "core/verify.h"
#include "gen/generators.h"

namespace mbe {
namespace {

// Dense enough that every algorithm has far more than a handful of maximal
// bicliques, small enough that full enumeration (the reference) is fast.
BipartiteGraph MediumGraph() { return gen::ErdosRenyi(24, 24, 0.4, 7); }

// A generator-produced worst-case graph: dense uniform bipartite graphs
// have an exponential number of maximal bicliques, so full enumeration is
// far beyond any test budget — exactly the situation run control exists
// for.
BipartiteGraph WorstCaseGraph() { return gen::ErdosRenyi(90, 90, 0.5, 11); }

std::vector<Biclique> ReferenceSet(const BipartiteGraph& graph) {
  CollectSink sink;
  Enumerate(graph, Options(), &sink);
  return sink.TakeSorted();
}

TEST(TerminationTest, NamesAreStable) {
  EXPECT_STREQ(TerminationName(Termination::kComplete), "complete");
  EXPECT_STREQ(TerminationName(Termination::kCancelled), "cancelled");
  EXPECT_STREQ(TerminationName(Termination::kDeadline), "deadline");
  EXPECT_STREQ(TerminationName(Termination::kBudget), "budget");
}

TEST(RunControlTest, InertControlIsInactive) {
  RunControl control;
  EXPECT_FALSE(control.active());
  control.max_results = 10;
  EXPECT_TRUE(control.active());
}

TEST(RunControlTest, UncontrolledRunReportsComplete) {
  CountSink sink;
  RunResult run;
  ASSERT_TRUE(Enumerate(MediumGraph(), Options(), &sink, &run).ok());
  EXPECT_EQ(run.termination, Termination::kComplete);
  EXPECT_TRUE(run.complete());
  EXPECT_EQ(run.results_emitted, sink.count());
}

TEST(RunControlTest, ResultBudgetEmitsExactPrefixOfMaximalBicliques) {
  const BipartiteGraph graph = MediumGraph();
  const std::vector<Biclique> reference = ReferenceSet(graph);
  ASSERT_GE(reference.size(), 20u);

  Options options;
  options.control.max_results = 10;
  CollectSink sink;
  RunResult run;
  ASSERT_TRUE(Enumerate(graph, options, &sink, &run).ok());
  EXPECT_EQ(run.termination, Termination::kBudget);
  EXPECT_EQ(run.results_emitted, 10u);

  // Every emitted biclique is a genuine maximal biclique of the input:
  // interruption yields a valid prefix, not partial garbage.
  const std::vector<Biclique> prefix = sink.TakeSorted();
  ASSERT_EQ(prefix.size(), 10u);
  for (const Biclique& b : prefix) {
    EXPECT_TRUE(IsMaximalBiclique(graph, b)) << ToString(b);
    EXPECT_TRUE(std::binary_search(reference.begin(), reference.end(), b));
  }
}

TEST(RunControlTest, ResultBudgetReportedForEveryAlgorithm) {
  const BipartiteGraph graph = MediumGraph();
  for (Algorithm algorithm :
       {Algorithm::kMbet, Algorithm::kMbetM, Algorithm::kMineLmbc,
        Algorithm::kMbea, Algorithm::kImbea, Algorithm::kOombeaLite,
        Algorithm::kBbk}) {
    Options options;
    options.algorithm = algorithm;
    if (algorithm == Algorithm::kOombeaLite) {
      options.order = VertexOrder::kUnilateralAsc;
    }
    options.control.max_results = 5;
    CollectSink sink;
    RunResult run;
    ASSERT_TRUE(Enumerate(graph, options, &sink, &run).ok())
        << AlgorithmName(algorithm);
    EXPECT_EQ(run.termination, Termination::kBudget)
        << AlgorithmName(algorithm);
    EXPECT_EQ(sink.results().size(), 5u) << AlgorithmName(algorithm);
    for (const Biclique& b : sink.results()) {
      EXPECT_TRUE(IsMaximalBiclique(graph, b))
          << AlgorithmName(algorithm) << ": " << ToString(b);
    }
  }
}

TEST(RunControlTest, ResultBudgetStopsAllWorkers) {
  const BipartiteGraph graph = MediumGraph();
  Options options;
  options.threads = 4;
  options.control.max_results = 8;
  CollectSink sink;
  RunResult run;
  ASSERT_TRUE(Enumerate(graph, options, &sink, &run).ok());
  EXPECT_EQ(run.termination, Termination::kBudget);
  // AdmitEmit makes the cap exact even under concurrent emission.
  EXPECT_EQ(run.results_emitted, 8u);
  const std::vector<Biclique> prefix = sink.TakeSorted();
  ASSERT_EQ(prefix.size(), 8u);
  for (const Biclique& b : prefix) {
    EXPECT_TRUE(IsMaximalBiclique(graph, b)) << ToString(b);
  }
}

TEST(RunControlTest, NodeBudgetTripsOnLargeRuns) {
  Options options;
  options.control.max_nodes_expanded = 100;
  CountSink sink;
  RunResult run;
  ASSERT_TRUE(Enumerate(WorstCaseGraph(), options, &sink, &run).ok());
  EXPECT_EQ(run.termination, Termination::kBudget);
  // Polling-granular: overshoot is bounded by the stride per worker.
  EXPECT_LT(run.stats.nodes_expanded, 100 + 2 * RunPoller::kStride);
}

TEST(RunControlTest, DeadlineStopsWorstCaseRunQuickly) {
  Options options;
  options.control.deadline_seconds = 0.2;
  CountSink sink;
  RunResult run;
  util::WallTimer timer;
  ASSERT_TRUE(Enumerate(WorstCaseGraph(), options, &sink, &run).ok());
  const double elapsed = timer.Seconds();
  EXPECT_EQ(run.termination, Termination::kDeadline);
  // ~1.2x headroom in the acceptance criterion; be generous for CI noise
  // but still catch a run that ignores the deadline.
  EXPECT_LT(elapsed, 2.0);
  EXPECT_GT(sink.count(), 0u);  // the prefix emitted so far is returned
}

TEST(RunControlTest, DeadlineStopsTheWholeFleet) {
  Options options;
  options.threads = 4;
  options.control.deadline_seconds = 0.2;
  CountSink sink;
  RunResult run;
  util::WallTimer timer;
  ASSERT_TRUE(Enumerate(WorstCaseGraph(), options, &sink, &run).ok());
  const double elapsed = timer.Seconds();
  EXPECT_EQ(run.termination, Termination::kDeadline);
  EXPECT_LT(elapsed, 2.0);
}

TEST(RunControlTest, DeadlineReportedForEveryParallelAlgorithm) {
  for (Algorithm algorithm :
       {Algorithm::kMbet, Algorithm::kMbetM, Algorithm::kImbea,
        Algorithm::kOombeaLite, Algorithm::kBbk}) {
    Options options;
    options.algorithm = algorithm;
    options.threads = 4;
    options.control.deadline_seconds = 0.1;
    CountSink sink;
    RunResult run;
    ASSERT_TRUE(Enumerate(WorstCaseGraph(), options, &sink, &run).ok())
        << AlgorithmName(algorithm);
    EXPECT_EQ(run.termination, Termination::kDeadline)
        << AlgorithmName(algorithm);
  }
}

TEST(RunControlTest, PreSetCancellationTokenStopsImmediately) {
  std::atomic<bool> cancel{true};
  Options options;
  options.control.cancel = &cancel;
  CountSink sink;
  RunResult run;
  ASSERT_TRUE(Enumerate(WorstCaseGraph(), options, &sink, &run).ok());
  EXPECT_EQ(run.termination, Termination::kCancelled);
  EXPECT_EQ(sink.count(), 0u);
}

TEST(RunControlTest, CancellationMidRunYieldsValidPrefix) {
  const BipartiteGraph graph = WorstCaseGraph();
  std::atomic<bool> cancel{false};
  Options options;
  options.control.cancel = &cancel;
  options.threads = 4;
  CountSink sink;
  RunResult run;
  std::thread canceller([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    cancel.store(true);
  });
  ASSERT_TRUE(Enumerate(graph, options, &sink, &run).ok());
  canceller.join();
  EXPECT_EQ(run.termination, Termination::kCancelled);
  EXPECT_GT(sink.count(), 0u);
}

TEST(RunControlTest, ProgressCallbackFiresWithLiveCounters) {
  std::atomic<uint64_t> fires{0};
  std::atomic<uint64_t> last_nodes{0};
  Options options;
  options.control.progress_every_s = 0;  // fire on every checkpoint
  options.control.progress = [&](const RunProgress& p) {
    fires.fetch_add(1);
    last_nodes.store(p.stats.nodes_expanded);
    EXPECT_GE(p.elapsed_seconds, 0.0);
  };
  options.control.max_nodes_expanded = 2000;
  CountSink sink;
  RunResult run;
  ASSERT_TRUE(Enumerate(WorstCaseGraph(), options, &sink, &run).ok());
  EXPECT_GT(fires.load(), 0u);
  EXPECT_GT(last_nodes.load(), 0u);
}

TEST(RunControlTest, AnytimeMaximumBicliqueReturnsIncumbentAtDeadline) {
  const BipartiteGraph graph = WorstCaseGraph();
  Options options;
  options.control.deadline_seconds = 0.2;
  Biclique best;
  RunResult run;
  util::WallTimer timer;
  ASSERT_TRUE(FindMaximumBiclique(graph, options, &best, &run).ok());
  EXPECT_LT(timer.Seconds(), 2.0);
  EXPECT_EQ(run.termination, Termination::kDeadline);
  // The incumbent is a real (maximal) biclique — a usable lower bound.
  ASSERT_FALSE(best.left.empty());
  EXPECT_TRUE(IsBiclique(graph, best)) << ToString(best);
}

TEST(RunControlTest, MaximumBicliqueCompleteRunMatchesLegacyShim) {
  const BipartiteGraph graph = MediumGraph();
  Biclique via_status;
  RunResult run;
  ASSERT_TRUE(FindMaximumBiclique(graph, Options(), &via_status, &run).ok());
  EXPECT_TRUE(run.complete());
  const Biclique via_shim = FindMaximumBiclique(graph, Options());
  EXPECT_EQ(via_status.num_edges(), via_shim.num_edges());
}

// --- Status facade -----------------------------------------------------------

TEST(StatusFacadeTest, ParseAlgorithmStatusOverload) {
  Algorithm algorithm = Algorithm::kMbea;
  EXPECT_TRUE(ParseAlgorithm("mbet", &algorithm).ok());
  EXPECT_EQ(algorithm, Algorithm::kMbet);
  const util::Status bad = ParseAlgorithm("quantum", &algorithm);
  EXPECT_EQ(bad.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(bad.message().find("quantum"), std::string::npos);
  EXPECT_EQ(algorithm, Algorithm::kMbet);  // untouched on error
}

TEST(StatusFacadeTest, NullSinkIsAnErrorNotACrash) {
  RunResult run;
  const util::Status status =
      Enumerate(MediumGraph(), Options(), nullptr, &run);
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
}

TEST(StatusFacadeTest, NullResultPointerIsAllowed) {
  CountSink sink;
  EXPECT_TRUE(Enumerate(MediumGraph(), Options(), &sink, nullptr).ok());
  EXPECT_GT(sink.count(), 0u);
}

TEST(StatusFacadeTest, InvalidOptionsAreAnErrorNotACrash) {
  Options options;
  options.algorithm = Algorithm::kMineLmbc;
  options.threads = 4;
  CountSink sink;
  RunResult run;
  const util::Status status = Enumerate(MediumGraph(), options, &sink, &run);
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(sink.count(), 0u);  // rejected before any work
}

TEST(ValidateTest, DefaultOptionsAreValid) {
  EXPECT_TRUE(Options().Validate().ok());
}

TEST(ValidateTest, RejectsEachMalformedField) {
  {
    Options o;
    o.threads = 0;
    EXPECT_EQ(o.Validate().code(), util::StatusCode::kInvalidArgument);
  }
  {
    Options o;
    o.algorithm = Algorithm::kMineLmbc;
    o.threads = 2;
    EXPECT_EQ(o.Validate().code(), util::StatusCode::kInvalidArgument);
  }
  {
    Options o;
    o.mbet.min_left = 0;
    EXPECT_EQ(o.Validate().code(), util::StatusCode::kInvalidArgument);
  }
  {
    Options o;
    o.mbet.min_right = 0;
    EXPECT_EQ(o.Validate().code(), util::StatusCode::kInvalidArgument);
  }
  {
    Options o;
    o.mbet.trie_min_groups = 0;
    EXPECT_EQ(o.Validate().code(), util::StatusCode::kInvalidArgument);
  }
  {
    Options o;
    uint64_t watermark = 0;
    o.mbet.best_edges = &watermark;
    o.threads = 2;
    EXPECT_EQ(o.Validate().code(), util::StatusCode::kInvalidArgument);
  }
  {
    Options o;
    o.control.deadline_seconds = -1;
    EXPECT_EQ(o.Validate().code(), util::StatusCode::kInvalidArgument);
  }
}

TEST(ValidateTest, ParallelSupportMatrix) {
  for (Algorithm algorithm :
       {Algorithm::kMbet, Algorithm::kMbetM, Algorithm::kMbea,
        Algorithm::kImbea, Algorithm::kOombeaLite, Algorithm::kBbk}) {
    Options o;
    o.algorithm = algorithm;
    o.threads = 8;
    EXPECT_TRUE(o.Validate().ok()) << AlgorithmName(algorithm);
  }
  for (Algorithm algorithm : {Algorithm::kMineLmbc}) {
    Options o;
    o.algorithm = algorithm;
    o.threads = 8;
    EXPECT_FALSE(o.Validate().ok()) << AlgorithmName(algorithm);
  }
}

// --- Truncated runs stay consistent with the reference ----------------------

TEST(RunControlTest, TruncatedPrefixIsSubsetOfFullRun) {
  const BipartiteGraph graph = MediumGraph();
  const std::vector<Biclique> reference = ReferenceSet(graph);
  for (unsigned threads : {1u, 4u}) {
    Options options;
    options.threads = threads;
    options.control.max_results = reference.size() / 2;
    CollectSink sink;
    RunResult run;
    ASSERT_TRUE(Enumerate(graph, options, &sink, &run).ok());
    EXPECT_EQ(run.termination, Termination::kBudget);
    for (const Biclique& b : sink.TakeSorted()) {
      EXPECT_TRUE(std::binary_search(reference.begin(), reference.end(), b))
          << "threads=" << threads << ": " << ToString(b);
    }
  }
}

}  // namespace
}  // namespace mbe
