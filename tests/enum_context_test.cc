// Unit tests for EnumContext, the per-thread scratch pool behind the
// enumeration engines: checkpoint/rewind bracketing, capacity accounting
// (including growth observed at rewind time), pooled reuse across runs,
// and the paranoid free-on-rewind mode. The final test runs every real
// engine with paranoid contexts: under the scripts/check.sh ASan leg it
// proves no engine lets a scratch buffer escape its rewound frame (an
// escape is a use-after-free ASan reports).

#include <gtest/gtest.h>

#include <vector>

#include "api/mbe.h"
#include "core/enum_context.h"
#include "gen/generators.h"
#include "util/memory.h"

namespace mbe {
namespace {

TEST(EnumContextTest, AcquireHandsOutClearedBuffers) {
  EnumContext ctx;
  EnumContext::Frame frame(&ctx);
  std::vector<VertexId>* ids = frame.AcquireIds();
  std::vector<uint64_t>* words = frame.AcquireWords();
  EXPECT_TRUE(ids->empty());
  EXPECT_TRUE(words->empty());
  ids->push_back(42);
  words->push_back(7);
  EXPECT_EQ(ctx.live_buffers(), 2u);
}

TEST(EnumContextTest, RewindReturnsBuffersForReuse) {
  EnumContext ctx;
  std::vector<VertexId>* first = nullptr;
  {
    EnumContext::Frame frame(&ctx);
    first = frame.AcquireIds();
    first->assign(100, 1);
  }
  EXPECT_EQ(ctx.live_buffers(), 0u);
  // The pooled buffer comes back cleared but with its capacity retained.
  EnumContext::Frame frame(&ctx);
  std::vector<VertexId>* again = frame.AcquireIds();
  EXPECT_EQ(again, first);
  EXPECT_TRUE(again->empty());
  EXPECT_GE(again->capacity(), 100u);
}

TEST(EnumContextTest, NestedDepthsDoNotDisturbOuterFrames) {
  EnumContext ctx;
  EnumContext::Frame outer(&ctx);
  std::vector<VertexId>* a = outer.AcquireIds();
  a->assign({1, 2, 3});
  std::vector<VertexId>* inner_buf = nullptr;
  {
    EnumContext::Frame inner(&ctx);
    inner_buf = inner.AcquireIds();
    EXPECT_NE(inner_buf, a);
    inner_buf->assign({9, 9});
    // Deeper nesting still.
    {
      EnumContext::Frame deepest(&ctx);
      std::vector<uint64_t>* w = deepest.AcquireWords();
      w->assign(4, ~0ULL);
      EXPECT_EQ(ctx.live_buffers(), 3u);
    }
    EXPECT_EQ(ctx.live_buffers(), 2u);
  }
  // The outer buffer (stable heap address) survived the inner rewinds.
  EXPECT_EQ(*a, (std::vector<VertexId>{1, 2, 3}));
  // A new inner frame reuses the rewound slot.
  EnumContext::Frame inner2(&ctx);
  EXPECT_EQ(inner2.AcquireIds(), inner_buf);
}

TEST(EnumContextTest, RewindAfterGrowthSettlesAccounting) {
  util::MemoryTracker tracker;
  {
    EnumContext ctx(&tracker);
    EXPECT_EQ(ctx.held_bytes(), 0u);
    uint64_t cap1 = 0;
    {
      EnumContext::Frame frame(&ctx);
      std::vector<VertexId>* ids = frame.AcquireIds();
      ids->resize(1000);  // growth while handed out
      cap1 = ids->capacity() * sizeof(VertexId);
    }
    EXPECT_EQ(ctx.held_bytes(), cap1);
    EXPECT_EQ(tracker.current(), cap1);
    EXPECT_EQ(ctx.peak_bytes(), cap1);
    // Grow the same pooled buffer further on a second use: only the delta
    // is added.
    uint64_t cap2 = 0;
    {
      EnumContext::Frame frame(&ctx);
      std::vector<VertexId>* ids = frame.AcquireIds();
      ids->resize(5000);
      cap2 = ids->capacity() * sizeof(VertexId);
    }
    EXPECT_EQ(ctx.held_bytes(), cap2);
    EXPECT_EQ(tracker.current(), cap2);
    EXPECT_GE(ctx.peak_bytes(), cap2);
    // Trim releases everything; peak accounting is kept.
    ctx.Trim();
    EXPECT_EQ(ctx.held_bytes(), 0u);
    EXPECT_EQ(tracker.current(), 0u);
    EXPECT_GE(ctx.peak_bytes(), cap2);
    // The pool stays usable after a trim.
    EnumContext::Frame frame(&ctx);
    std::vector<VertexId>* ids = frame.AcquireIds();
    ids->push_back(1);
  }
  // Destruction balances the tracker even without an explicit Trim.
  EXPECT_EQ(tracker.current(), 0u);
}

TEST(EnumContextTest, ReuseAcrossRunsKeepsCapacityFlat) {
  EnumContext ctx;
  uint64_t settled = 0;
  for (int run = 0; run < 5; ++run) {
    EnumContext::Frame frame(&ctx);
    for (int d = 0; d < 3; ++d) {
      std::vector<VertexId>* ids = frame.AcquireIds();
      std::vector<uint64_t>* words = frame.AcquireWords();
      ids->resize(256);
      words->resize(32);
    }
    // held_bytes stabilizes after the first run: later runs reuse pooled
    // capacity instead of allocating.
    if (run == 1) settled = ctx.held_bytes();
    if (run > 1) EXPECT_EQ(ctx.held_bytes(), settled) << "run=" << run;
  }
}

TEST(EnumContextTest, ParanoidModeFreesOnRewind) {
  util::MemoryTracker tracker;
  EnumContext ctx(&tracker, /*paranoid=*/true);
  {
    EnumContext::Frame frame(&ctx);
    frame.AcquireIds()->resize(512);
    frame.AcquireWords()->resize(64);
  }
  // Nothing pooled: the rewind freed the allocations outright.
  EXPECT_EQ(ctx.held_bytes(), 0u);
  EXPECT_EQ(tracker.current(), 0u);
  EXPECT_GT(ctx.peak_bytes(), 0u);
  EXPECT_EQ(ctx.live_buffers(), 0u);
  // Outer-frame buffers survive an inner paranoid rewind untouched.
  EnumContext::Frame outer(&ctx);
  std::vector<VertexId>* keep = outer.AcquireIds();
  keep->assign({4, 5, 6});
  {
    EnumContext::Frame inner(&ctx);
    inner.AcquireIds()->resize(128);
  }
  EXPECT_EQ(*keep, (std::vector<VertexId>{4, 5, 6}));
}

// The escape proof: run every engine (serial and parallel) with paranoid
// contexts, where each rewind frees its frame's buffers. Any engine that
// holds a pointer/span into a rewound scratch buffer trips ASan in the
// scripts/check.sh sanitizer leg; in unsanitized builds this still
// cross-checks result counts against the default-context run.
TEST(EnumContextTest, NoScratchEscapesARewoundFrameInAnyEngine) {
  const BipartiteGraph graph = gen::PowerLaw(120, 80, 900, 0.8, 0.8, 77);

  uint64_t want = 0;
  {
    CountSink sink;
    RunResult run;
    ASSERT_TRUE(Enumerate(graph, Options(), &sink, &run).ok());
    want = sink.count();
  }
  ASSERT_GT(want, 0u);

  EnumContext::SetParanoidForTesting(true);
  for (Algorithm algorithm :
       {Algorithm::kMbet, Algorithm::kMbetM, Algorithm::kMineLmbc,
        Algorithm::kMbea, Algorithm::kImbea, Algorithm::kOombeaLite}) {
    // MineLMBC and MBEA have no parallel driver support.
    const bool parallel_ok = algorithm != Algorithm::kMineLmbc &&
                             algorithm != Algorithm::kMbea;
    for (unsigned threads : {1u, 4u}) {
      if (threads > 1 && !parallel_ok) continue;
      Options options;
      options.algorithm = algorithm;
      options.threads = threads;
      // Exercise the bitmap classification path too (kernel scratch lives
      // in the same frames).
      options.mbet.bitmap_density = 0.0;
      CountSink sink;
      RunResult run;
      ASSERT_TRUE(Enumerate(graph, options, &sink, &run).ok());
      EXPECT_EQ(sink.count(), want)
          << AlgorithmName(algorithm) << " threads=" << threads;
    }
  }
  EnumContext::SetParanoidForTesting(false);
}

}  // namespace
}  // namespace mbe
