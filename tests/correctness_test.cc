// Cross-validation of every enumerator against the brute-force oracle on
// small random graphs, and against each other on medium graphs. These are
// the load-bearing correctness tests of the library: every algorithm,
// every ablation configuration, and the parallel driver must produce the
// exact same set of maximal bicliques.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/mbe.h"
#include "core/verify.h"
#include "gen/generators.h"
#include "util/random.h"

namespace mbe {
namespace {

std::vector<Biclique> RunEnum(const BipartiteGraph& graph, const Options& options) {
  CollectSink sink;
  Enumerate(graph, options, &sink);
  return sink.TakeSorted();
}

Options OptionsFor(Algorithm algorithm) {
  Options options;
  options.algorithm = algorithm;
  if (algorithm == Algorithm::kOombeaLite) {
    options.order = VertexOrder::kUnilateralAsc;
  }
  return options;
}

// --- Oracle cross-check on exhaustive small random graphs ----------------

struct OracleCase {
  size_t num_left;
  size_t num_right;
  double p;
  uint64_t seed;
};

class OracleTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(OracleTest, AllAlgorithmsMatchBruteForce) {
  const OracleCase& c = GetParam();
  BipartiteGraph graph =
      gen::ErdosRenyi(c.num_left, c.num_right, c.p, c.seed);
  const std::vector<Biclique> expected = BruteForceMbe(graph);

  for (Algorithm algorithm :
       {Algorithm::kMbet, Algorithm::kMbetM, Algorithm::kMineLmbc,
        Algorithm::kMbea, Algorithm::kImbea, Algorithm::kOombeaLite}) {
    const std::vector<Biclique> actual = RunEnum(graph, OptionsFor(algorithm));
    EXPECT_EQ(DiffResultSets(expected, actual), "")
        << AlgorithmName(algorithm) << " on " << graph.Summary()
        << " seed=" << c.seed;
    EXPECT_EQ(actual.size(), expected.size()) << AlgorithmName(algorithm);
  }
}

std::vector<OracleCase> MakeOracleCases() {
  std::vector<OracleCase> cases;
  uint64_t seed = 1000;
  for (size_t nl : {1u, 3u, 6u, 10u}) {
    for (size_t nr : {1u, 4u, 8u, 12u}) {
      for (double p : {0.1, 0.3, 0.6, 0.9}) {
        cases.push_back({nl, nr, p, ++seed});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, OracleTest,
                         ::testing::ValuesIn(MakeOracleCases()));

// Skewed-degree oracle sweep: power-law graphs drive the aggregation and
// witness machinery much harder than uniform ones at equal size.
class SkewedOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SkewedOracleTest, AllAlgorithmsMatchBruteForce) {
  BipartiteGraph graph = gen::PowerLaw(18, 13, 70, 0.9, 0.9, GetParam());
  const std::vector<Biclique> expected = BruteForceMbe(graph);
  for (Algorithm algorithm :
       {Algorithm::kMbet, Algorithm::kMbetM, Algorithm::kMineLmbc,
        Algorithm::kMbea, Algorithm::kImbea, Algorithm::kOombeaLite}) {
    EXPECT_EQ(DiffResultSets(expected, RunEnum(graph, OptionsFor(algorithm))),
              "")
        << AlgorithmName(algorithm) << " seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkewedOracleTest,
                         ::testing::Range<uint64_t>(3000, 3020));

// Planted-structure oracle sweep: dense blocks inside sparse noise.
class PlantedOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlantedOracleTest, MbetVariantsMatchBruteForce) {
  BipartiteGraph base = gen::ErdosRenyi(16, 12, 0.12, GetParam());
  BipartiteGraph graph =
      gen::PlantBicliques(base, 2, 5, 4, GetParam() + 1, nullptr);
  const std::vector<Biclique> expected = BruteForceMbe(graph);
  for (Algorithm algorithm : {Algorithm::kMbet, Algorithm::kMbetM}) {
    EXPECT_EQ(DiffResultSets(expected, RunEnum(graph, OptionsFor(algorithm))),
              "")
        << AlgorithmName(algorithm) << " seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlantedOracleTest,
                         ::testing::Range<uint64_t>(4000, 4015));

// --- Ablation configurations keep exactness -------------------------------

struct AblationCase {
  bool use_trie;
  bool use_aggregation;
  bool prune_q;
  bool recompute_locals;
};

class AblationTest : public ::testing::TestWithParam<AblationCase> {};

TEST_P(AblationTest, MatchesBruteForce) {
  const AblationCase& c = GetParam();
  for (uint64_t seed : {7u, 8u, 9u}) {
    BipartiteGraph graph = gen::ErdosRenyi(12, 12, 0.35, seed);
    const std::vector<Biclique> expected = BruteForceMbe(graph);
    Options options;
    options.algorithm = Algorithm::kMbet;
    options.mbet.use_trie = c.use_trie;
    options.mbet.use_aggregation = c.use_aggregation;
    options.mbet.prune_q = c.prune_q;
    options.mbet.recompute_locals = c.recompute_locals;
    EXPECT_EQ(DiffResultSets(expected, RunEnum(graph, options)), "")
        << "trie=" << c.use_trie << " agg=" << c.use_aggregation
        << " pruneq=" << c.prune_q << " recompute=" << c.recompute_locals
        << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSwitchCombos, AblationTest,
    ::testing::ValuesIn([] {
      std::vector<AblationCase> cases;
      for (int trie = 0; trie < 2; ++trie) {
        for (int agg = 0; agg < 2; ++agg) {
          for (int pq = 0; pq < 2; ++pq) {
            for (int rec = 0; rec < 2; ++rec) {
              cases.push_back({trie != 0, agg != 0, pq != 0, rec != 0});
            }
          }
        }
      }
      return cases;
    }()));

// --- Orders do not change the result set ----------------------------------

class OrderTest : public ::testing::TestWithParam<VertexOrder> {};

TEST_P(OrderTest, SameResultUnderEveryOrder) {
  BipartiteGraph graph = gen::PowerLaw(40, 30, 200, 0.8, 0.8, 42);
  Options base;
  base.order = VertexOrder::kNone;
  const std::vector<Biclique> expected = RunEnum(graph, base);
  ASSERT_EQ(ValidateResultSet(graph, expected), "");

  Options options;
  options.order = GetParam();
  options.seed = 5;
  EXPECT_EQ(DiffResultSets(expected, RunEnum(graph, options)), "")
      << VertexOrderName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllOrders, OrderTest,
    ::testing::Values(VertexOrder::kNone, VertexOrder::kDegreeAsc,
                      VertexOrder::kDegreeDesc, VertexOrder::kTwoHopAsc,
                      VertexOrder::kUnilateralAsc, VertexOrder::kRandom));

// --- Medium graphs: algorithms agree with each other ----------------------

TEST(CrossCheckTest, MediumPowerLawAllAlgorithmsAgree) {
  BipartiteGraph graph = gen::PowerLaw(300, 200, 1800, 0.85, 0.8, 77);
  const std::vector<Biclique> reference =
      RunEnum(graph, OptionsFor(Algorithm::kMbet));
  ASSERT_EQ(ValidateResultSet(graph, reference), "");
  ASSERT_GT(reference.size(), 100u) << "workload too trivial to be a test";

  for (Algorithm algorithm :
       {Algorithm::kMbetM, Algorithm::kMineLmbc, Algorithm::kMbea,
        Algorithm::kImbea, Algorithm::kOombeaLite}) {
    EXPECT_EQ(DiffResultSets(reference, RunEnum(graph, OptionsFor(algorithm))), "")
        << AlgorithmName(algorithm);
  }
}

TEST(CrossCheckTest, PlantedBicliquesAreFound) {
  BipartiteGraph base = gen::ErdosRenyi(60, 50, 0.05, 11);
  std::vector<gen::PlantedBiclique> planted;
  BipartiteGraph graph = gen::PlantBicliques(base, 4, 5, 4, 12, &planted);
  ASSERT_EQ(planted.size(), 4u);

  const std::vector<Biclique> results = RunEnum(graph, Options());
  ASSERT_EQ(ValidateResultSet(graph, results), "");
  // Every planted block must be contained in some maximal biclique.
  for (const gen::PlantedBiclique& block : planted) {
    bool contained = false;
    for (const Biclique& b : results) {
      if (IsSubset(block.left, b.left) && IsSubset(block.right, b.right)) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained) << "planted block lost";
  }
}

// --- Parallel drivers produce identical results ---------------------------

TEST(ParallelTest, ThreadsAndSchedulingDoNotChangeResults) {
  BipartiteGraph graph = gen::PowerLaw(250, 180, 1500, 0.85, 0.8, 99);
  const std::vector<Biclique> reference = RunEnum(graph, Options());

  for (Algorithm algorithm : {Algorithm::kMbet, Algorithm::kImbea}) {
    for (unsigned threads : {2u, 4u, 8u}) {
      for (Scheduling scheduling : {Scheduling::kDynamic, Scheduling::kStatic,
                                    Scheduling::kStealing}) {
        Options options = OptionsFor(algorithm);
        options.threads = threads;
        options.scheduling = scheduling;
        EXPECT_EQ(DiffResultSets(reference, RunEnum(graph, options)), "")
            << AlgorithmName(algorithm) << " threads=" << threads << " "
            << SchedulingName(scheduling);
      }
    }
  }
}

// --- Degenerate graphs -----------------------------------------------------

TEST(EdgeCaseTest, EmptyGraph) {
  BipartiteGraph graph;
  EXPECT_EQ(CountMaximalBicliques(graph, Options()), 0u);
}

TEST(EdgeCaseTest, NoEdges) {
  BipartiteGraph graph = BipartiteGraph::FromEdges(5, 7, {});
  EXPECT_EQ(CountMaximalBicliques(graph, Options()), 0u);
}

TEST(EdgeCaseTest, SingleEdge) {
  BipartiteGraph graph = BipartiteGraph::FromEdges(3, 3, {{1, 2}});
  CollectSink sink;
  Enumerate(graph, Options(), &sink);
  const auto results = sink.TakeSorted();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], (Biclique{{1}, {2}}));
}

TEST(EdgeCaseTest, CompleteBipartite) {
  std::vector<Edge> edges;
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = 0; v < 5; ++v) edges.push_back({u, v});
  }
  BipartiteGraph graph = BipartiteGraph::FromEdges(4, 5, edges);
  CollectSink sink;
  Enumerate(graph, Options(), &sink);
  const auto results = sink.TakeSorted();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].left.size(), 4u);
  EXPECT_EQ(results[0].right.size(), 5u);
}

TEST(EdgeCaseTest, PerfectMatchingYieldsOneBicliquePerEdge) {
  std::vector<Edge> edges;
  for (VertexId i = 0; i < 10; ++i) edges.push_back({i, i});
  BipartiteGraph graph = BipartiteGraph::FromEdges(10, 10, edges);
  EXPECT_EQ(CountMaximalBicliques(graph, Options()), 10u);
}

TEST(EdgeCaseTest, StarGraph) {
  // One left hub connected to every right vertex: exactly one maximal
  // biclique ({hub}, V).
  std::vector<Edge> edges;
  for (VertexId v = 0; v < 8; ++v) edges.push_back({0, v});
  BipartiteGraph graph = BipartiteGraph::FromEdges(1, 8, edges);
  CollectSink sink;
  Enumerate(graph, Options(), &sink);
  const auto results = sink.TakeSorted();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].right.size(), 8u);
}

// --- The worked example from the MBE literature ---------------------------

TEST(KnownGraphTest, LiteratureExampleHasSixMaximalBicliques) {
  // The running-example bipartite graph G0 used across the GMBE/MBET line
  // of papers: U = {u1..u5}, V = {v1..v4} (0-indexed here), 6 maximal
  // bicliques.
  std::vector<Edge> edges = {
      {0, 0}, {0, 1}, {0, 2},          // u1 - v1 v2 v3
      {1, 0}, {1, 1}, {1, 2}, {1, 3},  // u2 - v1 v2 v3 v4
      {2, 1},                          // u3 - v2
      {3, 1}, {3, 2}, {3, 3},          // u4 - v2 v3 v4
      {4, 3},                          // u5 - v4
  };
  BipartiteGraph graph = BipartiteGraph::FromEdges(5, 4, edges);
  const std::vector<Biclique> expected = BruteForceMbe(graph);
  EXPECT_EQ(expected.size(), 6u);
  for (Algorithm algorithm :
       {Algorithm::kMbet, Algorithm::kMbetM, Algorithm::kMineLmbc,
        Algorithm::kMbea, Algorithm::kImbea, Algorithm::kOombeaLite}) {
    EXPECT_EQ(DiffResultSets(expected, RunEnum(graph, OptionsFor(algorithm))), "")
        << AlgorithmName(algorithm);
  }
}

}  // namespace
}  // namespace mbe
