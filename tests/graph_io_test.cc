// Unit tests for the text loaders/writers: format parsing, headers,
// comment handling, error reporting, and save/load round trips.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "gen/generators.h"
#include "graph/graph_io.h"

namespace mbe {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(GraphIoTest, ParsePlainEdgeList) {
  auto result = ParseEdgeListText("0 0\n0 1\n2 1\n");
  ASSERT_TRUE(result.ok());
  const BipartiteGraph& g = result.value();
  EXPECT_EQ(g.num_left(), 3u);
  EXPECT_EQ(g.num_right(), 2u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.HasEdge(2, 1));
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  auto result = ParseEdgeListText(
      "# a comment\n% another style\n\n0 0\n\n# trailing\n1 1\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_edges(), 2u);
}

TEST(GraphIoTest, HeaderFixesCardinalities) {
  auto result = ParseEdgeListText("# pmbe 10 20\n0 0\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_left(), 10u);
  EXPECT_EQ(result.value().num_right(), 20u);
}

TEST(GraphIoTest, HeaderSmallerThanEdgesIsCorrupt) {
  auto result = ParseEdgeListText("# pmbe 1 1\n5 5\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCorruptData);
}

TEST(GraphIoTest, MalformedLineIsCorrupt) {
  auto result = ParseEdgeListText("0 0\nnot numbers\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCorruptData);
  // The error message names the offending line.
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(GraphIoTest, MissingSecondColumnIsCorrupt) {
  auto result = ParseEdgeListText("0\n");
  ASSERT_FALSE(result.ok());
}

TEST(GraphIoTest, PlainDuplicateEdgesAreCorrupt) {
  // The strict plain-text loader rejects duplicate edges and names both
  // offending lines; silently collapsing them hides generator bugs.
  auto result = ParseEdgeListText("0 0\n1 1\n0 0\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCorruptData);
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos);
  EXPECT_NE(result.status().message().find("line 1"), std::string::npos);
}

TEST(GraphIoTest, PlainTrailingGarbageIsCorrupt) {
  auto result = ParseEdgeListText("0 0\n1 1 extra\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCorruptData);
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(GraphIoTest, DuplicateHeaderIsCorrupt) {
  auto result = ParseEdgeListText("# pmbe 2 2\n# pmbe 3 3\n0 0\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCorruptData);
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(result.status().message().find("line 1"), std::string::npos);
}

TEST(GraphIoTest, OverflowingIdIsOutOfRange) {
  // 21 digits: exceeds 64 bits entirely, must not silently wrap.
  auto result = ParseEdgeListText("0 184467440737095516150\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kOutOfRange);
  EXPECT_NE(result.status().message().find("line 1"), std::string::npos);
}

TEST(GraphIoTest, HeaderMismatchNamesBothLines) {
  auto result = ParseEdgeListText("# pmbe 4 4\n0 0\n7 1\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCorruptData);
  EXPECT_NE(result.status().message().find("line 1"), std::string::npos);
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos);
}

TEST(GraphIoTest, HeaderCardinalityOverflowIsOutOfRange) {
  auto result = ParseEdgeListText("# pmbe 99999999999 2\n0 0\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kOutOfRange);
}

TEST(GraphIoTest, HugeHeaderTripsAmplificationGuard) {
  // In-range cardinality, but gigabytes of CSR for a 20-byte input: the
  // loader must refuse before allocating, naming the header line.
  auto result = ParseEdgeListText("# pmbe 99999999 2\n0 0\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kOutOfRange);
  EXPECT_NE(result.status().message().find("line 1"), std::string::npos);
  EXPECT_NE(result.status().message().find("amplification"),
            std::string::npos);
}

TEST(GraphIoTest, HugeSparseIdTripsAmplificationGuard) {
  // No header: a single edge naming vertex 99999999 implies the same
  // oversized allocation; the guard names the line of the offending id.
  auto result = ParseEdgeListText("0 0\n1 99999999\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kOutOfRange);
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(GraphIoTest, EmptyInputGivesEmptyGraph) {
  auto result = ParseEdgeListText("# nothing\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_left(), 0u);
  EXPECT_EQ(result.value().num_edges(), 0u);
}

TEST(GraphIoTest, MissingFileIsNotFound) {
  auto result = LoadEdgeList("/nonexistent/path/graph.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kNotFound);
}

TEST(GraphIoTest, SaveLoadRoundTrip) {
  BipartiteGraph g = gen::PowerLaw(30, 20, 120, 0.8, 0.8, 17);
  const std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), g);
  std::remove(path.c_str());
}

TEST(GraphIoTest, RoundTripPreservesIsolatedVertices) {
  // Isolated trailing vertices survive only through the header.
  BipartiteGraph g = BipartiteGraph::FromEdges(5, 8, {{0, 0}});
  const std::string path = TempPath("isolated.txt");
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_left(), 5u);
  EXPECT_EQ(loaded.value().num_right(), 8u);
  std::remove(path.c_str());
}

TEST(GraphIoTest, KonectIsOneBased) {
  const std::string path = TempPath("konect.txt");
  WriteFile(path, "% bip unweighted\n1 1\n2 3 5 1200000\n");
  auto result = LoadKonect(path);
  ASSERT_TRUE(result.ok());
  const BipartiteGraph& g = result.value();
  EXPECT_EQ(g.num_left(), 2u);   // max u = 2 -> 0-based id 1
  EXPECT_EQ(g.num_right(), 3u);  // max v = 3 -> 0-based id 2
  EXPECT_TRUE(g.HasEdge(0, 0));
  EXPECT_TRUE(g.HasEdge(1, 2));
  std::remove(path.c_str());
}

TEST(GraphIoTest, KonectZeroIdIsCorrupt) {
  const std::string path = TempPath("konect_bad.txt");
  WriteFile(path, "0 1\n");
  auto result = LoadKonect(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCorruptData);
  std::remove(path.c_str());
}

TEST(GraphIoTest, KonectMultiEdgesCollapse) {
  const std::string path = TempPath("konect_multi.txt");
  WriteFile(path, "1 1 1 100\n1 1 1 200\n1 1 1 300\n2 2\n");
  auto result = LoadKonect(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_edges(), 2u);
  std::remove(path.c_str());
}

TEST(GraphIoTest, HugeIdIsOutOfRange) {
  auto result = ParseEdgeListText("0 18446744073709551615\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kOutOfRange);
}

TEST(GraphIoTest, KonectTextHelperMatchesLoader) {
  auto result = ParseKonectText("% bip unweighted\n1 1\n2 3 5 1200000\n");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().HasEdge(0, 0));
  EXPECT_TRUE(result.value().HasEdge(1, 2));
}

// Every fixture under tests/data/bad/ must be rejected with a non-OK
// status (never a crash), and the message must carry a line number.
TEST(GraphIoTest, MalformedFixturesAreRejectedWithLineNumbers) {
  const std::string dir = std::string(PMBE_TEST_DATA_DIR) + "/bad";
  const char* kFixtures[] = {
      "dup_edge.txt",       "overflow_id.txt",  "trailing_garbage.txt",
      "double_header.txt",  "header_too_small.txt", "not_numbers.txt",
      "header_overflow.txt", "konect_zero_id.txt",
  };
  for (const char* name : kFixtures) {
    const std::string path = dir + "/" + name;
    auto result = std::string(name).rfind("konect_", 0) == 0
                      ? LoadKonect(path)
                      : LoadEdgeList(path);
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_NE(result.status().code(), util::StatusCode::kNotFound)
        << name << ": fixture missing";
    EXPECT_NE(result.status().message().find("line "), std::string::npos)
        << name << ": " << result.status().message();
  }
}

TEST(GraphIoTest, SaveToUnwritablePathFails) {
  BipartiteGraph g = BipartiteGraph::FromEdges(1, 1, {{0, 0}});
  util::Status status = SaveEdgeList(g, "/nonexistent/dir/out.txt");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kIoError);
}

}  // namespace
}  // namespace mbe
