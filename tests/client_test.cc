// Tests of the fault-tolerant client library (client/client.h): deadline
// behavior against silent peers (the hang-forever regression the library
// exists to fix), the retryable-vs-terminal error taxonomy, digest-
// verified stream acceptance under retry (exactly-once in buffered mode,
// typed truncation in streaming mode), and end-to-end operation against a
// real serve::Server. Scripted failure modes run against a raw-socket
// server that follows an explicit per-connection script.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "api/session.h"
#include "client/client.h"
#include "core/run_control.h"
#include "core/sink.h"
#include "gen/generators.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace mbe::client {
namespace {

using serve::FrameAssembler;
using serve::Message;

std::string SocketPath(const char* tag) {
  return "/tmp/pmbe_client_test_" + std::to_string(getpid()) + "_" + tag +
         ".sock";
}

ClientOptions FastOptions(const std::string& path) {
  ClientOptions options;
  options.unix_path = path;
  options.connect_timeout_seconds = 2;
  options.io_timeout_seconds = 2;
  options.max_retries = 2;
  options.backoff_initial_seconds = 0.001;
  options.backoff_max_seconds = 0.01;
  return options;
}

/// One accepted connection of the scripted server: framed reads/writes
/// over the raw fd.
struct RawConn {
  explicit RawConn(int fd) : fd(fd) {}

  std::optional<Message> Read() {
    std::vector<uint8_t> chunk(4096);
    for (;;) {
      Message message;
      auto produced = assembler.Next(&message);
      if (!produced.ok()) return {};
      if (produced.value()) return message;
      const ssize_t n = recv(fd, chunk.data(), chunk.size(), 0);
      if (n <= 0) return {};
      assembler.Feed(std::span<const uint8_t>(chunk.data(),
                                              static_cast<size_t>(n)));
    }
  }

  bool Write(const Message& message) {
    std::vector<uint8_t> frame;
    if (!serve::EncodeMessage(message, &frame).ok()) return false;
    size_t off = 0;
    while (off < frame.size()) {
      const ssize_t n =
          send(fd, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Answers the client's kHello; every healthy script starts with this.
  bool Greet() {
    std::optional<Message> hello = Read();
    if (!hello.has_value() ||
        !std::holds_alternative<serve::HelloMsg>(*hello)) {
      return false;
    }
    return Write(serve::HelloOkMsg{});
  }

  int fd;
  FrameAssembler assembler;
};

/// A raw Unix-socket server that accepts `scripts.size()` connections in
/// order and runs one script per connection. Used to stage failure modes
/// a real server never produces on purpose (silence, truncation, wrong
/// digests).
class ScriptedServer {
 public:
  using Script = std::function<void(RawConn&)>;

  ScriptedServer(std::string path, std::vector<Script> scripts)
      : path_(std::move(path)) {
    unlink(path_.c_str());
    listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);
    EXPECT_EQ(bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
              0);
    EXPECT_EQ(listen(listen_fd_, 8), 0);
    thread_ = std::thread([this, scripts = std::move(scripts)]() {
      for (const Script& script : scripts) {
        const int fd = accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) return;
        RawConn conn(fd);
        script(conn);
        close(fd);
      }
    });
  }

  ~ScriptedServer() {
    shutdown(listen_fd_, SHUT_RDWR);
    close(listen_fd_);
    if (thread_.joinable()) thread_.join();
    unlink(path_.c_str());
  }

 private:
  std::string path_;
  int listen_fd_ = -1;
  std::thread thread_;
};

/// A tiny fixed result stream: two batches plus the matching
/// (digest, count) a truthful server would report.
struct FixedStream {
  FixedStream() {
    const VertexId l0[] = {1, 2};
    const VertexId r0[] = {3};
    const VertexId l1[] = {4};
    const VertexId r1[] = {5, 6};
    batch1.batch.Append(std::span<const VertexId>(l0),
                        std::span<const VertexId>(r0));
    batch2.batch.Append(std::span<const VertexId>(l1),
                        std::span<const VertexId>(r1));
    FingerprintSink fold;
    fold.EmitBatch(batch1.batch);
    fold.EmitBatch(batch2.batch);
    digest = fold.Digest();
    count = fold.count();
  }

  serve::SessionDoneMsg Done(uint64_t session_id) const {
    serve::SessionDoneMsg done;
    done.session_id = session_id;
    done.termination = static_cast<uint8_t>(Termination::kComplete);
    done.results_emitted = count;
    done.digest = digest;
    return done;
  }

  serve::ResultBatchMsg batch1;
  serve::ResultBatchMsg batch2;
  uint64_t digest = 0;
  uint64_t count = 0;
};

/// Scripts below tag frames with this session id.
constexpr uint64_t kSid = 7;

void SetSessionIds(FixedStream* stream) {
  stream->batch1.session_id = kSid;
  stream->batch2.session_id = kSid;
}

std::shared_ptr<const Engine> SmallEngine() {
  auto engine =
      Engine::Build(gen::ErdosRenyi(20, 20, 0.35, 9), GraphOptions{});
  EXPECT_TRUE(engine.ok());
  return std::move(engine).value();
}

void SoloReference(const std::shared_ptr<const Engine>& engine,
                   uint64_t* digest, uint64_t* count) {
  FingerprintSink sink;
  Session session(engine, RunOptions{});
  RunResult result;
  ASSERT_TRUE(session.Run(&sink, &result).ok());
  ASSERT_TRUE(result.complete());
  *digest = sink.Digest();
  *count = sink.count();
}

serve::LoadGraphMsg SmallLoad(const std::string& name) {
  const BipartiteGraph graph = gen::ErdosRenyi(20, 20, 0.35, 9);
  serve::LoadGraphMsg load;
  load.name = name;
  load.num_left = static_cast<uint32_t>(graph.num_left());
  load.num_right = static_cast<uint32_t>(graph.num_right());
  for (const auto& [u, v] : graph.ToEdges()) {
    load.edge_left.push_back(u);
    load.edge_right.push_back(v);
  }
  return load;
}

TEST(ClientTest, ErrorTaxonomyPartition) {
  EXPECT_TRUE(IsRetryable(ErrorKind::kConnectFailed));
  EXPECT_TRUE(IsRetryable(ErrorKind::kTimeout));
  EXPECT_TRUE(IsRetryable(ErrorKind::kConnectionLost));
  EXPECT_TRUE(IsRetryable(ErrorKind::kServerBusy));
  EXPECT_FALSE(IsRetryable(ErrorKind::kDigestMismatch));
  EXPECT_FALSE(IsRetryable(ErrorKind::kRejected));
  EXPECT_FALSE(IsRetryable(ErrorKind::kProtocol));
  EXPECT_FALSE(IsRetryable(ErrorKind::kServerError));
  EXPECT_STREQ(ErrorKindName(ErrorKind::kTruncatedStream),
               "truncated-stream");
}

TEST(ClientTest, ConnectRefusedRetriesThenFails) {
  ClientOptions options = FastOptions(SocketPath("refused"));
  options.max_retries = 2;
  Client client(options);
  EXPECT_FALSE(client.Connect().ok());
  EXPECT_EQ(client.last_error(), ErrorKind::kConnectFailed);
  EXPECT_EQ(client.retries(), 2u);
  EXPECT_FALSE(client.connected());
}

// The regression the library exists for: the old hand-rolled WireClient
// had no socket timeouts, so a server that accepted and then went silent
// hung pmbe_load forever. The Client must surface kTimeout within its
// deadline instead.
TEST(ClientTest, SilentServerTimesOutInsteadOfHanging) {
  const std::string path = SocketPath("silent");
  ScriptedServer server(path, {[](RawConn& conn) {
    // Accept, read the hello, answer nothing — a wedged peer.
    conn.Read();
    std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  }});
  ClientOptions options = FastOptions(path);
  options.io_timeout_seconds = 0.2;
  options.max_retries = 0;
  Client client(options);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(client.Connect().ok());
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(client.last_error(), ErrorKind::kTimeout);
  EXPECT_LT(elapsed, 1.0);  // deadline'd, not the script's 1.5s nap
}

TEST(ClientTest, EndToEndEnumerateVerifiesDigest) {
  serve::ServerOptions soptions;
  soptions.unix_path = SocketPath("e2e");
  serve::Server server(soptions);
  const auto engine = SmallEngine();
  ASSERT_TRUE(server.registry().Put("g", engine));
  ASSERT_TRUE(server.Start().ok());

  uint64_t want_digest = 0, want_count = 0;
  SoloReference(engine, &want_digest, &want_count);

  Client client(FastOptions(soptions.unix_path));
  ASSERT_TRUE(client.Ping().ok());
  serve::StartSessionMsg start;
  start.graph = "g";
  FingerprintSink sink;
  auto outcome = client.Enumerate(start, &sink);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome.value().attempts, 1u);
  EXPECT_EQ(outcome.value().digest, want_digest);
  EXPECT_EQ(outcome.value().done.results_emitted, want_count);
  // Buffered delivery reached the caller's sink exactly once.
  EXPECT_EQ(sink.Digest(), want_digest);
  EXPECT_EQ(sink.count(), want_count);

  auto info = client.GetServerInfo();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().pool_threads, server.pool_threads());
  EXPECT_GE(info.value().heartbeats, 1u);
  EXPECT_EQ(info.value().sessions_started, 1u);
  server.Stop();
}

TEST(ClientTest, ReloadGraphBumpsEpochAndKeepsServing) {
  serve::ServerOptions soptions;
  soptions.unix_path = SocketPath("reload");
  serve::Server server(soptions);
  ASSERT_TRUE(server.Start().ok());

  Client client(FastOptions(soptions.unix_path));
  const serve::LoadGraphMsg load = SmallLoad("g");
  auto first = client.LoadGraph(load);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().epoch, 1u);
  auto swapped = client.ReloadGraph(load);
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  EXPECT_EQ(swapped.value().epoch, 2u);

  serve::StartSessionMsg start;
  start.graph = "g";
  auto outcome = client.Enumerate(start, nullptr);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(static_cast<Termination>(outcome.value().done.termination),
            Termination::kComplete);
  server.Stop();
}

TEST(ClientTest, ServerBusyRejectionIsRetriedToSuccess) {
  FixedStream stream;
  SetSessionIds(&stream);
  const std::string path = SocketPath("busy");
  ScriptedServer server(
      path,
      {[](RawConn& conn) {
         ASSERT_TRUE(conn.Greet());
         ASSERT_TRUE(conn.Read().has_value());  // kStartSession
         serve::RejectedMsg busy;
         busy.reason =
             static_cast<uint8_t>(serve::RejectReason::kTooManySessions);
         busy.detail = "full";
         conn.Write(busy);
       },
       [&stream](RawConn& conn) {
         ASSERT_TRUE(conn.Greet());
         ASSERT_TRUE(conn.Read().has_value());
         conn.Write(serve::SessionStartedMsg{kSid});
         conn.Write(stream.batch1);
         conn.Write(stream.batch2);
         conn.Write(stream.Done(kSid));
       }});
  Client client(FastOptions(path));
  FingerprintSink sink;
  auto outcome = client.Enumerate(serve::StartSessionMsg{}, &sink);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome.value().attempts, 2u);
  EXPECT_EQ(sink.count(), stream.count);
  EXPECT_EQ(sink.Digest(), stream.digest);
  EXPECT_GE(client.retries(), 1u);
  EXPECT_GE(client.reconnects(), 1u);
}

TEST(ClientTest, DrainingRejectionIsTerminal) {
  const std::string path = SocketPath("draining");
  ScriptedServer server(path, {[](RawConn& conn) {
    ASSERT_TRUE(conn.Greet());
    ASSERT_TRUE(conn.Read().has_value());
    serve::RejectedMsg reject;
    reject.reason = static_cast<uint8_t>(serve::RejectReason::kDraining);
    reject.detail = "draining";
    conn.Write(reject);
  }});
  Client client(FastOptions(path));
  auto outcome = client.Enumerate(serve::StartSessionMsg{}, nullptr);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(client.last_error(), ErrorKind::kRejected);
}

// Buffered mode (default): a connection lost mid-stream discards the
// partial attempt and re-issues the query; the caller's sink sees the
// complete retried stream exactly once, never partial + complete merged.
TEST(ClientTest, MidStreamLossReissuesBufferedExactlyOnce) {
  FixedStream stream;
  SetSessionIds(&stream);
  const std::string path = SocketPath("reissue");
  ScriptedServer server(
      path,
      {[&stream](RawConn& conn) {
         ASSERT_TRUE(conn.Greet());
         ASSERT_TRUE(conn.Read().has_value());
         conn.Write(serve::SessionStartedMsg{kSid});
         conn.Write(stream.batch1);  // partial stream, then death
       },
       [&stream](RawConn& conn) {
         ASSERT_TRUE(conn.Greet());
         ASSERT_TRUE(conn.Read().has_value());
         conn.Write(serve::SessionStartedMsg{kSid});
         conn.Write(stream.batch1);
         conn.Write(stream.batch2);
         conn.Write(stream.Done(kSid));
       }});
  Client client(FastOptions(path));
  FingerprintSink sink;
  auto outcome = client.Enumerate(serve::StartSessionMsg{}, &sink);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome.value().attempts, 2u);
  // Exactly the complete stream — the discarded partial attempt's batch
  // did not leak into the fold.
  EXPECT_EQ(sink.count(), stream.count);
  EXPECT_EQ(sink.Digest(), stream.digest);
}

// Streaming mode: the partial prefix already escaped to the caller, so a
// mid-stream loss must surface as typed kTruncatedStream, not a retry
// that would merge streams.
TEST(ClientTest, StreamingModeTruncationIsTerminal) {
  FixedStream stream;
  SetSessionIds(&stream);
  const std::string path = SocketPath("truncate");
  ScriptedServer server(path, {[&stream](RawConn& conn) {
    ASSERT_TRUE(conn.Greet());
    ASSERT_TRUE(conn.Read().has_value());
    conn.Write(serve::SessionStartedMsg{kSid});
    conn.Write(stream.batch1);
  }});
  ClientOptions options = FastOptions(path);
  options.buffer_results = false;
  Client client(options);
  FingerprintSink sink;
  auto outcome = client.Enumerate(serve::StartSessionMsg{}, &sink);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(client.last_error(), ErrorKind::kTruncatedStream);
  // The delivered prefix is visible (that is the streaming contract);
  // the typed error tells the caller it is a prefix.
  EXPECT_EQ(sink.count(), 1u);
}

// A complete stream whose digest disagrees with the server's own claim
// is corruption, not weather — terminal, no retry, nothing delivered.
TEST(ClientTest, WrongDigestIsTerminalAndUndelivered) {
  FixedStream stream;
  SetSessionIds(&stream);
  const std::string path = SocketPath("digest");
  ScriptedServer server(path, {[&stream](RawConn& conn) {
    ASSERT_TRUE(conn.Greet());
    ASSERT_TRUE(conn.Read().has_value());
    conn.Write(serve::SessionStartedMsg{kSid});
    conn.Write(stream.batch1);
    conn.Write(stream.batch2);
    serve::SessionDoneMsg done = stream.Done(kSid);
    done.digest ^= 1;  // the lie
    conn.Write(done);
  }});
  Client client(FastOptions(path));
  FingerprintSink sink;
  auto outcome = client.Enumerate(serve::StartSessionMsg{}, &sink);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(client.last_error(), ErrorKind::kDigestMismatch);
  EXPECT_EQ(sink.count(), 0u);  // buffered batches were never released
}

// A peer that vanishes while the client is mid-write must surface as a
// typed connection loss, never as SIGPIPE process death (MSG_NOSIGNAL in
// the net shim).
TEST(ClientTest, PeerCloseDuringLargeWriteIsConnectionLostNotSigpipe) {
  const std::string path = SocketPath("sigpipe");
  ScriptedServer server(path, {[](RawConn& conn) {
    ASSERT_TRUE(conn.Greet());
    // Close immediately; the client's big upload lands on a dead socket.
  }});
  ClientOptions options = FastOptions(path);
  options.max_retries = 0;
  Client client(options);
  ASSERT_TRUE(client.Connect().ok());
  serve::LoadGraphMsg load = SmallLoad("big");
  // Large enough to overflow the socket buffer so send() hits the closed
  // peer for sure.
  load.num_left = 200000;
  load.num_right = 2;
  load.edge_left.clear();
  load.edge_right.clear();
  for (uint32_t i = 0; i < 200000; ++i) {
    load.edge_left.push_back(i);
    load.edge_right.push_back(i % 2);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto reply = client.LoadGraph(load);
  EXPECT_FALSE(reply.ok());
  EXPECT_TRUE(client.last_error() == ErrorKind::kConnectionLost ||
              client.last_error() == ErrorKind::kTimeout)
      << ErrorKindName(client.last_error());
  EXPECT_FALSE(client.connected());
}

// LoadGraph is first-wins, hence never re-sent once possibly on the
// wire; the mid-write failure above must therefore be terminal (no
// second connection is scripted — a retry would hang the test).
TEST(ClientTest, LoadGraphIsNotReissuedAfterSendFailure) {
  const std::string path = SocketPath("loadonce");
  ScriptedServer server(path, {[](RawConn& conn) {
    ASSERT_TRUE(conn.Greet());
    conn.Read();  // swallow the load, then die before kLoadOk
  }});
  ClientOptions options = FastOptions(path);
  options.max_retries = 3;
  Client client(options);
  auto reply = client.LoadGraph(SmallLoad("once"));
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(client.retries(), 0u);  // the send phase was never retried
}

}  // namespace
}  // namespace mbe::client
