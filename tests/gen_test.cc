// Unit tests for the synthetic generators and the dataset registry:
// determinism, statistical shape, planted structure, and registry
// materialization invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "gen/generators.h"
#include "gen/registry.h"

namespace mbe::gen {
namespace {

TEST(ErdosRenyiTest, DeterministicInSeed) {
  BipartiteGraph a = ErdosRenyi(100, 80, 0.05, 7);
  BipartiteGraph b = ErdosRenyi(100, 80, 0.05, 7);
  BipartiteGraph c = ErdosRenyi(100, 80, 0.05, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(ErdosRenyiTest, EdgeCountNearExpectation) {
  const size_t nl = 500, nr = 400;
  const double p = 0.02;
  BipartiteGraph g = ErdosRenyi(nl, nr, p, 3);
  const double expected = nl * nr * p;  // 4000
  const double sigma = std::sqrt(expected * (1 - p));
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 6 * sigma);
}

TEST(ErdosRenyiTest, ExtremesAndDegenerate) {
  EXPECT_EQ(ErdosRenyi(10, 10, 0.0, 1).num_edges(), 0u);
  EXPECT_EQ(ErdosRenyi(10, 10, 1.0, 1).num_edges(), 100u);
  EXPECT_EQ(ErdosRenyi(0, 10, 0.5, 1).num_edges(), 0u);
  EXPECT_EQ(ErdosRenyi(10, 0, 0.5, 1).num_edges(), 0u);
}

TEST(UniformEdgesTest, ExactEdgeCount) {
  for (size_t m : {0u, 1u, 100u, 999u}) {
    BipartiteGraph g = UniformEdges(60, 50, m, 11);
    EXPECT_EQ(g.num_edges(), m);
  }
}

TEST(UniformEdgesTest, FullGraphPossible) {
  BipartiteGraph g = UniformEdges(8, 8, 64, 2);
  EXPECT_EQ(g.num_edges(), 64u);
}

TEST(PowerLawTest, ProducesSkewedDegrees) {
  BipartiteGraph g = PowerLaw(2000, 1500, 12000, 0.9, 0.9, 5);
  EXPECT_GT(g.num_edges(), 8000u);  // duplicate collapse loses some
  // Skew: the max degree should far exceed the average degree.
  const double avg = static_cast<double>(g.num_edges()) / g.num_right();
  EXPECT_GT(static_cast<double>(g.MaxRightDegree()), 8 * avg);
}

TEST(PowerLawTest, FlatExponentIsNotVerySkewed) {
  BipartiteGraph flat = PowerLaw(2000, 1500, 12000, 0.1, 0.1, 5);
  BipartiteGraph skew = PowerLaw(2000, 1500, 12000, 1.0, 1.0, 5);
  EXPECT_LT(flat.MaxRightDegree(), skew.MaxRightDegree());
}

TEST(PowerLawTest, DeterministicInSeed) {
  EXPECT_EQ(PowerLaw(100, 100, 500, 0.8, 0.8, 9),
            PowerLaw(100, 100, 500, 0.8, 0.8, 9));
  EXPECT_NE(PowerLaw(100, 100, 500, 0.8, 0.8, 9),
            PowerLaw(100, 100, 500, 0.8, 0.8, 10));
}

TEST(PlantBicliquesTest, AllPlantedEdgesPresent) {
  BipartiteGraph base = ErdosRenyi(80, 60, 0.02, 21);
  std::vector<PlantedBiclique> planted;
  BipartiteGraph g = PlantBicliques(base, 3, 6, 5, 22, &planted);
  ASSERT_EQ(planted.size(), 3u);
  for (const PlantedBiclique& block : planted) {
    EXPECT_EQ(block.left.size(), 6u);
    EXPECT_TRUE(std::is_sorted(block.left.begin(), block.left.end()));
    EXPECT_EQ(std::adjacent_find(block.left.begin(), block.left.end()),
              block.left.end())
        << "duplicate planted vertex";
    for (VertexId u : block.left) {
      for (VertexId v : block.right) {
        EXPECT_TRUE(g.HasEdge(u, v)) << "missing planted edge";
      }
    }
  }
  // Base edges survive.
  for (const Edge& e : base.ToEdges()) {
    EXPECT_TRUE(g.HasEdge(e.u, e.v));
  }
}

TEST(BlockCommunityTest, BlocksAreDenserThanBackground) {
  BipartiteGraph g = BlockCommunity(300, 200, 4, 0.5, 0.01, 31);
  // Count edges inside block 0 vs a cross-block window of the same size.
  size_t in_block = 0, cross = 0;
  for (size_t u = 0; u < 75; ++u) {
    for (size_t v = 0; v < 50; ++v) {
      in_block += g.HasEdge(static_cast<VertexId>(u), static_cast<VertexId>(v));
      cross += g.HasEdge(static_cast<VertexId>(u),
                         static_cast<VertexId>(v + 100));
    }
  }
  EXPECT_GT(in_block, 10 * std::max<size_t>(cross, 1));
}

// --- Registry ----------------------------------------------------------------

TEST(RegistryTest, ThirteenDatasetsRegistered) {
  EXPECT_EQ(AllDatasets().size(), 13u);
  EXPECT_EQ(FullSuite().size(), 13u);
  for (const std::string& name : DefaultSuite()) {
    EXPECT_NO_FATAL_FAILURE(FindDataset(name));
  }
}

TEST(RegistryTest, MaterializeAtSmallScaleIsWellFormed) {
  for (const DatasetSpec& spec : AllDatasets()) {
    BipartiteGraph g = Materialize(spec, 0.05);
    EXPECT_GT(g.num_edges(), 0u) << spec.name;
    // Standard preprocessing: right side is the smaller side.
    EXPECT_LE(g.num_right(), g.num_left()) << spec.name;
  }
}

TEST(RegistryTest, MaterializeIsDeterministic) {
  const DatasetSpec& spec = FindDataset("Mti");
  EXPECT_EQ(Materialize(spec, 0.1), Materialize(spec, 0.1));
}

TEST(RegistryTest, ScaleShrinksTheGraph) {
  const DatasetSpec& spec = FindDataset("WA");
  BipartiteGraph small = Materialize(spec, 0.05);
  BipartiteGraph large = Materialize(spec, 0.2);
  EXPECT_LT(small.num_edges(), large.num_edges());
  EXPECT_LT(small.num_left() + small.num_right(),
            large.num_left() + large.num_right());
}

TEST(RegistryDeathTest, UnknownDatasetAborts) {
  EXPECT_DEATH(FindDataset("no-such-dataset"), "unknown dataset");
}

}  // namespace
}  // namespace mbe::gen
