// Baseline-specific behavior: MBEA vs iMBEA work profiles, MineLMBC's
// from-scratch checking, ooMBEA-lite's subtree pruning, and the direct
// (non-facade) entry points.

#include <gtest/gtest.h>

#include "baselines/mbea.h"
#include "baselines/mine_lmbc.h"
#include "baselines/oombea_lite.h"
#include "core/verify.h"
#include "gen/generators.h"
#include "graph/ordering.h"

namespace mbe {
namespace {

BipartiteGraph Workload(uint64_t seed = 70) {
  return gen::PowerLaw(250, 180, 1400, 0.85, 0.8, seed);
}

TEST(MbeaBaselineTest, GlobalRootAndSubtreeModesAgree) {
  BipartiteGraph graph = Workload();
  MbeaEnumerator global(graph, MbeaOptions{.improved = true});
  FingerprintSink a;
  global.EnumerateAll(&a);

  MbeaEnumerator subtree(graph, MbeaOptions{.improved = true});
  FingerprintSink b;
  for (VertexId v = 0; v < graph.num_right(); ++v) {
    subtree.EnumerateSubtree(v, &b);
  }
  EXPECT_EQ(a.Digest(), b.Digest());
  EXPECT_GT(a.count(), 0u);
}

TEST(MbeaBaselineTest, ImprovedVariantDoesLessWitnessWork) {
  BipartiteGraph graph = ApplyOrder(Workload(), VertexOrder::kDegreeAsc);
  MbeaEnumerator plain(graph, MbeaOptions{.improved = false});
  CountSink s1;
  plain.EnumerateAll(&s1);
  MbeaEnumerator improved(graph, MbeaOptions{.improved = true});
  CountSink s2;
  improved.EnumerateAll(&s2);
  EXPECT_EQ(s1.count(), s2.count());
  // iMBEA's candidate ordering prunes non-maximal children earlier.
  EXPECT_LE(improved.stats().non_maximal, plain.stats().non_maximal * 2);
}

TEST(MineLmbcBaselineTest, CountersAreConsistent) {
  BipartiteGraph graph = gen::PowerLaw(120, 90, 600, 0.8, 0.8, 71);
  MineLmbcEnumerator engine(graph);
  CountSink sink;
  engine.EnumerateAll(&sink);
  EXPECT_EQ(engine.stats().maximal, sink.count());
  EXPECT_GT(engine.stats().nodes_expanded, 0u);
  // Every generated child is either emitted or rejected; both appear.
  EXPECT_GT(engine.stats().non_maximal, 0u);
}

TEST(MineLmbcBaselineTest, EmptyAndTinyGraphs) {
  BipartiteGraph empty;
  MineLmbcEnumerator a(empty);
  CountSink s1;
  a.EnumerateAll(&s1);
  EXPECT_EQ(s1.count(), 0u);

  BipartiteGraph one = BipartiteGraph::FromEdges(1, 1, {{0, 0}});
  MineLmbcEnumerator b(one);
  CollectSink s2;
  b.EnumerateAll(&s2);
  const auto results = s2.TakeSorted();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], (Biclique{{0}, {0}}));
}

TEST(OombeaLiteBaselineTest, PrunesDominatedSubtrees) {
  // Twin-heavy graph: later twins must be pruned at the root.
  std::vector<Edge> edges;
  for (VertexId v = 0; v < 6; ++v) {
    edges.push_back({0, v});
    edges.push_back({1, v});
  }
  BipartiteGraph graph = BipartiteGraph::FromEdges(2, 6, edges);
  OombeaLiteEnumerator engine(graph);
  CountSink sink;
  engine.EnumerateAll(&sink);
  EXPECT_EQ(sink.count(), 1u);
  EXPECT_EQ(engine.stats().subtrees_pruned, 5u);
}

TEST(BaselineCrossTest, AllDirectEntryPointsAgreeOnValidity) {
  BipartiteGraph graph = gen::ErdosRenyi(40, 35, 0.12, 72);
  CollectSink mbea_sink, lmbc_sink, oombea_sink;
  MbeaEnumerator mbea(graph, MbeaOptions{.improved = true});
  mbea.EnumerateAll(&mbea_sink);
  MineLmbcEnumerator lmbc(graph);
  lmbc.EnumerateAll(&lmbc_sink);
  OombeaLiteEnumerator oombea(graph);
  oombea.EnumerateAll(&oombea_sink);

  const auto expected = lmbc_sink.TakeSorted();
  EXPECT_EQ(ValidateResultSet(graph, expected), "");
  EXPECT_EQ(DiffResultSets(expected, mbea_sink.TakeSorted()), "");
  EXPECT_EQ(DiffResultSets(expected, oombea_sink.TakeSorted()), "");
}

TEST(BaselineStopTest, BaselinesHonorCancellation) {
  BipartiteGraph graph = Workload(73);
  for (int which = 0; which < 3; ++which) {
    CountSink inner;
    BudgetSink budget(&inner, /*max_results=*/50, /*deadline_seconds=*/0);
    if (which == 0) {
      MbeaEnumerator e(graph, MbeaOptions{});
      e.EnumerateAll(&budget);
    } else if (which == 1) {
      MineLmbcEnumerator e(graph);
      e.EnumerateAll(&budget);
    } else {
      OombeaLiteEnumerator e(graph);
      e.EnumerateAll(&budget);
    }
    EXPECT_GE(budget.emitted(), 50u) << which;
    EXPECT_LT(budget.emitted(), 200u) << which;  // stopped promptly
  }
}

}  // namespace
}  // namespace mbe
