// Size-constrained enumeration and maximum-biclique search, validated
// against the filtered brute-force oracle on random graphs.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "api/mbe.h"
#include "core/verify.h"
#include "gen/generators.h"

namespace mbe {
namespace {

std::vector<Biclique> OracleFiltered(const BipartiteGraph& graph,
                                     size_t min_left, size_t min_right) {
  std::vector<Biclique> all = BruteForceMbe(graph);
  std::erase_if(all, [&](const Biclique& b) {
    return b.left.size() < min_left || b.right.size() < min_right;
  });
  return all;
}

struct FilterCase {
  uint32_t min_left;
  uint32_t min_right;
};

class SizeFilterTest : public ::testing::TestWithParam<FilterCase> {};

TEST_P(SizeFilterTest, MatchesFilteredOracle) {
  const FilterCase& c = GetParam();
  for (uint64_t seed : {21u, 22u, 23u, 24u}) {
    BipartiteGraph graph = gen::ErdosRenyi(14, 12, 0.4, seed);
    const std::vector<Biclique> expected =
        OracleFiltered(graph, c.min_left, c.min_right);

    for (Algorithm algorithm : {Algorithm::kMbet, Algorithm::kMbetM}) {
      Options options;
      options.algorithm = algorithm;
      options.mbet.min_left = c.min_left;
      options.mbet.min_right = c.min_right;
      CollectSink sink;
      Enumerate(graph, options, &sink);
      EXPECT_EQ(DiffResultSets(expected, sink.TakeSorted()), "")
          << AlgorithmName(algorithm) << " min_left=" << c.min_left
          << " min_right=" << c.min_right << " seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, SizeFilterTest,
                         ::testing::Values(FilterCase{1, 1}, FilterCase{2, 1},
                                           FilterCase{1, 2}, FilterCase{2, 2},
                                           FilterCase{3, 3}, FilterCase{4, 2},
                                           FilterCase{2, 4},
                                           FilterCase{6, 6}));

TEST(SizeFilterTest, ConstraintsFollowCallerOrientationUnderAutoSwap) {
  // Tall graph: |V| > |U| triggers the internal side swap; min_left must
  // still constrain the caller's left side.
  BipartiteGraph graph = gen::ErdosRenyi(6, 14, 0.45, 77);
  ASSERT_GT(graph.num_right(), graph.num_left());
  const std::vector<Biclique> expected = OracleFiltered(graph, 3, 2);

  Options options;
  options.mbet.min_left = 3;
  options.mbet.min_right = 2;
  ASSERT_TRUE(options.auto_swap_sides);
  CollectSink sink;
  Enumerate(graph, options, &sink);
  EXPECT_EQ(DiffResultSets(expected, sink.TakeSorted()), "");
}

TEST(SizeFilterTest, FilterPrunesWork) {
  BipartiteGraph graph = gen::PowerLaw(400, 250, 2500, 0.85, 0.8, 5);
  Options unfiltered;
  RunResult full;
  {
    CountSink sink;
    full = Enumerate(graph, unfiltered, &sink);
  }
  Options filtered;
  filtered.mbet.min_left = 4;
  filtered.mbet.min_right = 4;
  RunResult pruned;
  {
    CountSink sink;
    pruned = Enumerate(graph, filtered, &sink);
  }
  // The thresholds must actually prune the search tree, not post-filter.
  EXPECT_LT(pruned.stats.nodes_expanded, full.stats.nodes_expanded);
}

// --- Maximum biclique -------------------------------------------------------

uint64_t OracleMaxEdges(const BipartiteGraph& graph, size_t min_left,
                        size_t min_right) {
  uint64_t best = 0;
  for (const Biclique& b : BruteForceMbe(graph)) {
    if (b.left.size() >= min_left && b.right.size() >= min_right) {
      best = std::max<uint64_t>(best, b.num_edges());
    }
  }
  return best;
}

TEST(MaximumBicliqueTest, MatchesOracleOnRandomGraphs) {
  for (uint64_t seed = 100; seed < 130; ++seed) {
    BipartiteGraph graph = gen::ErdosRenyi(13, 13, 0.35, seed);
    const uint64_t expected = OracleMaxEdges(graph, 1, 1);
    const Biclique best = FindMaximumBiclique(graph, Options());
    if (expected == 0) {
      EXPECT_TRUE(best.left.empty()) << "seed=" << seed;
      continue;
    }
    EXPECT_EQ(best.num_edges(), expected) << "seed=" << seed;
    EXPECT_TRUE(IsMaximalBiclique(graph, best)) << "seed=" << seed;
  }
}

TEST(MaximumBicliqueTest, RespectsSizeConstraints) {
  for (uint64_t seed = 200; seed < 215; ++seed) {
    BipartiteGraph graph = gen::ErdosRenyi(14, 12, 0.45, seed);
    Options options;
    options.mbet.min_left = 3;
    options.mbet.min_right = 3;
    const Biclique best = FindMaximumBiclique(graph, options);
    const uint64_t expected = OracleMaxEdges(graph, 3, 3);
    if (expected == 0) {
      EXPECT_TRUE(best.left.empty()) << "seed=" << seed;
      continue;
    }
    EXPECT_GE(best.left.size(), 3u);
    EXPECT_GE(best.right.size(), 3u);
    EXPECT_EQ(best.num_edges(), expected) << "seed=" << seed;
  }
}

TEST(MaximumBicliqueTest, FindsPlantedBlock) {
  BipartiteGraph base = gen::ErdosRenyi(200, 150, 0.01, 9);
  std::vector<gen::PlantedBiclique> planted;
  BipartiteGraph graph = gen::PlantBicliques(base, 1, 12, 10, 10, &planted);
  const Biclique best = FindMaximumBiclique(graph, Options());
  // The planted 12x10 block dwarfs anything the sparse background forms;
  // the maximum must contain it.
  EXPECT_GE(best.num_edges(), 120u);
  EXPECT_TRUE(std::includes(best.left.begin(), best.left.end(),
                            planted[0].left.begin(), planted[0].left.end()));
  EXPECT_TRUE(std::includes(best.right.begin(), best.right.end(),
                            planted[0].right.begin(),
                            planted[0].right.end()));
}

TEST(MaximumBicliqueTest, AgreesWithFullEnumerationOnMediumGraph) {
  BipartiteGraph graph = gen::PowerLaw(500, 300, 3000, 0.85, 0.8, 12);
  uint64_t expected = 0;
  CallbackSink max_tracker(
      [&](std::span<const VertexId> l, std::span<const VertexId> r) {
        expected = std::max<uint64_t>(expected, l.size() * r.size());
      });
  Enumerate(graph, Options(), &max_tracker);
  ASSERT_GT(expected, 0u);

  const Biclique best = FindMaximumBiclique(graph, Options());
  EXPECT_EQ(best.num_edges(), expected);
  EXPECT_TRUE(IsMaximalBiclique(graph, best));
}

}  // namespace
}  // namespace mbe
