// Unit tests for the result sinks: counting, collection, callbacks,
// order-independent fingerprints, and budget-based cancellation.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/sink.h"

namespace mbe {
namespace {

void EmitPair(ResultSink& sink, std::vector<VertexId> l,
              std::vector<VertexId> r) {
  sink.Emit(l, r);
}

TEST(CountSinkTest, CountsAndTotals) {
  CountSink sink;
  EmitPair(sink, {1, 2}, {3});
  EmitPair(sink, {1}, {2, 3, 4});
  EXPECT_EQ(sink.count(), 2u);
  EXPECT_EQ(sink.left_total(), 3u);
  EXPECT_EQ(sink.right_total(), 4u);
  EXPECT_FALSE(sink.ShouldStop());
}

TEST(CountSinkTest, ThreadSafeCounting) {
  CountSink sink;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&sink]() {
      for (int i = 0; i < 1000; ++i) EmitPair(sink, {1}, {2});
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sink.count(), 4000u);
}

TEST(CollectSinkTest, CollectsCopiesAndSorts) {
  CollectSink sink;
  EmitPair(sink, {5}, {6});
  EmitPair(sink, {1, 2}, {3});
  auto results = sink.TakeSorted();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0], (Biclique{{1, 2}, {3}}));
  EXPECT_EQ(results[1], (Biclique{{5}, {6}}));
}

TEST(CallbackSinkTest, ForwardsEveryEmission) {
  int calls = 0;
  size_t total = 0;
  CallbackSink sink([&](std::span<const VertexId> l,
                        std::span<const VertexId> r) {
    ++calls;
    total += l.size() + r.size();
  });
  EmitPair(sink, {1}, {2, 3});
  EmitPair(sink, {4, 5}, {6});
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(total, 6u);
}

TEST(FingerprintSinkTest, OrderIndependent) {
  FingerprintSink a, b;
  EmitPair(a, {1, 2}, {3});
  EmitPair(a, {4}, {5, 6});
  EmitPair(a, {7}, {8});

  EmitPair(b, {7}, {8});
  EmitPair(b, {1, 2}, {3});
  EmitPair(b, {4}, {5, 6});
  EXPECT_EQ(a.Digest(), b.Digest());
  EXPECT_EQ(a.count(), 3u);
}

TEST(FingerprintSinkTest, DistinguishesDifferentSets) {
  FingerprintSink a, b;
  EmitPair(a, {1, 2}, {3});
  EmitPair(b, {1}, {2, 3});  // same vertices, different split
  EXPECT_NE(a.Digest(), b.Digest());

  FingerprintSink c, d;
  EmitPair(c, {1}, {2});
  EmitPair(d, {1}, {2});
  EmitPair(d, {1}, {2});  // multiplicity matters
  EXPECT_NE(c.Digest(), d.Digest());
}

TEST(BudgetSinkTest, StopsAtMaxResults) {
  CountSink inner;
  BudgetSink budget(&inner, /*max_results=*/3, /*deadline_seconds=*/0);
  EXPECT_FALSE(budget.ShouldStop());
  EmitPair(budget, {1}, {2});
  EmitPair(budget, {1}, {2});
  EXPECT_FALSE(budget.ShouldStop());
  EmitPair(budget, {1}, {2});
  EXPECT_TRUE(budget.ShouldStop());
  EXPECT_EQ(inner.count(), 3u);
  EXPECT_EQ(budget.emitted(), 3u);
}

TEST(BudgetSinkTest, StopsAtDeadline) {
  CountSink inner;
  BudgetSink budget(&inner, 0, /*deadline_seconds=*/0.02);
  EXPECT_FALSE(budget.ShouldStop());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  // The deadline path samples the clock once per kClockStride polls, so
  // the stop is guaranteed within one stride of polls — and once tripped
  // it stays tripped without further clock reads.
  bool stopped = false;
  for (uint32_t i = 0; i < BudgetSink::kClockStride && !stopped; ++i) {
    stopped = budget.ShouldStop();
  }
  EXPECT_TRUE(stopped);
  EXPECT_TRUE(budget.ShouldStop());
}

TEST(BudgetSinkTest, UnlimitedNeverStops) {
  CountSink inner;
  BudgetSink budget(&inner, 0, 0);
  for (int i = 0; i < 100; ++i) EmitPair(budget, {1}, {2});
  EXPECT_FALSE(budget.ShouldStop());
}

TEST(BudgetSinkTest, PropagatesInnerStop) {
  // An inner sink that stops immediately.
  class StopSink : public ResultSink {
   public:
    void Emit(std::span<const VertexId>, std::span<const VertexId>) override {}
    bool ShouldStop() const override { return true; }
  };
  StopSink inner;
  BudgetSink budget(&inner, 0, 0);
  EXPECT_TRUE(budget.ShouldStop());
}

TEST(HashBicliqueTest, SideSplitMatters) {
  std::vector<VertexId> a = {1, 2};
  std::vector<VertexId> b = {3};
  std::vector<VertexId> ab = {1, 2, 3};
  std::vector<VertexId> empty;
  EXPECT_NE(HashBiclique(a, b), HashBiclique(b, a));
  EXPECT_NE(HashBiclique(a, b), HashBiclique(ab, empty));
}

TEST(ToStringTest, RendersBothSides) {
  Biclique b{{1, 2}, {7}};
  EXPECT_EQ(ToString(b), "{1,2} x {7}");
}

// --- BicliqueBatch / EmitBatch --------------------------------------------

TEST(BicliqueBatchTest, AppendsAndReadsBack) {
  BicliqueBatch batch;
  EXPECT_TRUE(batch.empty());
  std::vector<VertexId> l1 = {1, 2}, r1 = {3};
  std::vector<VertexId> l2 = {4}, r2 = {5, 6, 7};
  batch.Append(l1, r1);
  batch.Append(l2, r2);
  ASSERT_EQ(batch.size(), 2u);
  // bytes() accounts both the id arena and the per-entry records.
  EXPECT_GE(batch.bytes(), 7 * sizeof(VertexId));
  EXPECT_EQ(std::vector<VertexId>(batch.left(0).begin(), batch.left(0).end()),
            l1);
  EXPECT_EQ(std::vector<VertexId>(batch.right(1).begin(), batch.right(1).end()),
            r2);
  batch.clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.bytes(), 0u);
}

TEST(EmitBatchTest, DefaultForwardsPerItem) {
  // A sink overriding only Emit must still receive every batched biclique.
  class RecordingSink : public ResultSink {
   public:
    void Emit(std::span<const VertexId> left,
              std::span<const VertexId>) override {
      lefts.push_back(std::vector<VertexId>(left.begin(), left.end()));
    }
    std::vector<std::vector<VertexId>> lefts;
  };
  RecordingSink sink;
  BicliqueBatch batch;
  std::vector<VertexId> r = {9};
  for (VertexId i = 0; i < 5; ++i) {
    std::vector<VertexId> l = {i};
    batch.Append(l, r);
  }
  sink.EmitBatch(batch);
  ASSERT_EQ(sink.lefts.size(), 5u);
  EXPECT_EQ(sink.lefts[3], std::vector<VertexId>{3});
}

TEST(EmitBatchTest, FingerprintMatchesPerItemEmission) {
  BicliqueBatch batch;
  FingerprintSink batched, unbatched;
  for (VertexId i = 0; i < 10; ++i) {
    std::vector<VertexId> l = {i, static_cast<VertexId>(i + 1)};
    std::vector<VertexId> r = {static_cast<VertexId>(100 + i)};
    batch.Append(l, r);
    unbatched.Emit(l, r);
  }
  batched.EmitBatch(batch);
  EXPECT_EQ(batched.Digest(), unbatched.Digest());
  EXPECT_EQ(batched.count(), 10u);
}

// --- BufferedSink ----------------------------------------------------------

TEST(BufferedSinkTest, FlushesAtResultThreshold) {
  CountSink inner;
  BufferedSink buffered(&inner, /*max_results=*/4, /*max_bytes=*/1 << 20);
  for (int i = 0; i < 3; ++i) EmitPair(buffered, {1}, {2});
  EXPECT_EQ(inner.count(), 0u) << "flushed before the threshold";
  EXPECT_EQ(buffered.buffered(), 3u);
  EmitPair(buffered, {1}, {2});
  EXPECT_EQ(inner.count(), 4u);
  EXPECT_EQ(buffered.buffered(), 0u);
  EXPECT_EQ(buffered.flushes(), 1u);
}

TEST(BufferedSinkTest, FlushesAtByteThreshold) {
  // Measure the bytes of one buffered biclique, then set the threshold so
  // the second emission trips it (bytes() includes entry records, so the
  // test derives the number instead of hardcoding it).
  BicliqueBatch probe;
  std::vector<VertexId> l = {1, 2, 3}, r = {4, 5};
  probe.Append(l, r);
  const size_t one = probe.bytes();

  CountSink inner;
  BufferedSink buffered(&inner, /*max_results=*/1000, /*max_bytes=*/one + 1);
  EmitPair(buffered, {1, 2, 3}, {4, 5});
  EXPECT_EQ(inner.count(), 0u);
  EmitPair(buffered, {1, 2, 3}, {4, 5});  // 2 * one >= one + 1 -> flush
  EXPECT_EQ(inner.count(), 2u);
  EXPECT_EQ(buffered.flushes(), 1u);
}

TEST(BufferedSinkTest, DestructorFlushesRemainder) {
  CountSink inner;
  {
    BufferedSink buffered(&inner, 100, 1 << 20);
    EmitPair(buffered, {1}, {2});
    EmitPair(buffered, {3}, {4});
    EXPECT_EQ(inner.count(), 0u);
  }
  EXPECT_EQ(inner.count(), 2u);
}

TEST(BufferedSinkTest, ShouldStopForwardsUnbuffered) {
  class StopSink : public ResultSink {
   public:
    void Emit(std::span<const VertexId>, std::span<const VertexId>) override {}
    bool ShouldStop() const override { return stop; }
    bool stop = false;
  };
  StopSink inner;
  BufferedSink buffered(&inner, 100, 1 << 20);
  EXPECT_FALSE(buffered.ShouldStop());
  inner.stop = true;
  EXPECT_TRUE(buffered.ShouldStop()) << "stop must not wait for a flush";
}

TEST(BudgetSinkTest, CountsBatchedEmissions) {
  CountSink inner;
  BudgetSink budget(&inner, /*max_results=*/5, 0);
  BicliqueBatch batch;
  std::vector<VertexId> l = {1}, r = {2};
  for (int i = 0; i < 6; ++i) batch.Append(l, r);
  budget.EmitBatch(batch);
  // Regression: a batch straddling the bound used to be delivered whole,
  // over-emitting past max_results. Exactly the admitted prefix goes down.
  EXPECT_EQ(inner.count(), 5u);
  EXPECT_EQ(budget.emitted(), 5u);
  EXPECT_TRUE(budget.ShouldStop());
}

TEST(BudgetSinkTest, ExactBoundAcrossBatchesAndSingles) {
  CountSink inner;
  BudgetSink budget(&inner, /*max_results=*/4, 0);
  BicliqueBatch batch;
  std::vector<VertexId> l = {1}, r = {2};
  for (int i = 0; i < 3; ++i) batch.Append(l, r);
  budget.EmitBatch(batch);  // 3 of 4 admitted
  EXPECT_EQ(inner.count(), 3u);
  EXPECT_FALSE(budget.ShouldStop());
  budget.EmitBatch(batch);  // only 1 seat left
  EXPECT_EQ(inner.count(), 4u);
  EXPECT_TRUE(budget.ShouldStop());
  budget.Emit(l, r);  // singles past the bound are dropped too
  EXPECT_EQ(inner.count(), 4u);
  EXPECT_EQ(budget.emitted(), 4u);
}

}  // namespace
}  // namespace mbe
