// Unit tests for the result sinks: counting, collection, callbacks,
// order-independent fingerprints, and budget-based cancellation.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/sink.h"

namespace mbe {
namespace {

void EmitPair(ResultSink& sink, std::vector<VertexId> l,
              std::vector<VertexId> r) {
  sink.Emit(l, r);
}

TEST(CountSinkTest, CountsAndTotals) {
  CountSink sink;
  EmitPair(sink, {1, 2}, {3});
  EmitPair(sink, {1}, {2, 3, 4});
  EXPECT_EQ(sink.count(), 2u);
  EXPECT_EQ(sink.left_total(), 3u);
  EXPECT_EQ(sink.right_total(), 4u);
  EXPECT_FALSE(sink.ShouldStop());
}

TEST(CountSinkTest, ThreadSafeCounting) {
  CountSink sink;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&sink]() {
      for (int i = 0; i < 1000; ++i) EmitPair(sink, {1}, {2});
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sink.count(), 4000u);
}

TEST(CollectSinkTest, CollectsCopiesAndSorts) {
  CollectSink sink;
  EmitPair(sink, {5}, {6});
  EmitPair(sink, {1, 2}, {3});
  auto results = sink.TakeSorted();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0], (Biclique{{1, 2}, {3}}));
  EXPECT_EQ(results[1], (Biclique{{5}, {6}}));
}

TEST(CallbackSinkTest, ForwardsEveryEmission) {
  int calls = 0;
  size_t total = 0;
  CallbackSink sink([&](std::span<const VertexId> l,
                        std::span<const VertexId> r) {
    ++calls;
    total += l.size() + r.size();
  });
  EmitPair(sink, {1}, {2, 3});
  EmitPair(sink, {4, 5}, {6});
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(total, 6u);
}

TEST(FingerprintSinkTest, OrderIndependent) {
  FingerprintSink a, b;
  EmitPair(a, {1, 2}, {3});
  EmitPair(a, {4}, {5, 6});
  EmitPair(a, {7}, {8});

  EmitPair(b, {7}, {8});
  EmitPair(b, {1, 2}, {3});
  EmitPair(b, {4}, {5, 6});
  EXPECT_EQ(a.Digest(), b.Digest());
  EXPECT_EQ(a.count(), 3u);
}

TEST(FingerprintSinkTest, DistinguishesDifferentSets) {
  FingerprintSink a, b;
  EmitPair(a, {1, 2}, {3});
  EmitPair(b, {1}, {2, 3});  // same vertices, different split
  EXPECT_NE(a.Digest(), b.Digest());

  FingerprintSink c, d;
  EmitPair(c, {1}, {2});
  EmitPair(d, {1}, {2});
  EmitPair(d, {1}, {2});  // multiplicity matters
  EXPECT_NE(c.Digest(), d.Digest());
}

TEST(BudgetSinkTest, StopsAtMaxResults) {
  CountSink inner;
  BudgetSink budget(&inner, /*max_results=*/3, /*deadline_seconds=*/0);
  EXPECT_FALSE(budget.ShouldStop());
  EmitPair(budget, {1}, {2});
  EmitPair(budget, {1}, {2});
  EXPECT_FALSE(budget.ShouldStop());
  EmitPair(budget, {1}, {2});
  EXPECT_TRUE(budget.ShouldStop());
  EXPECT_EQ(inner.count(), 3u);
  EXPECT_EQ(budget.emitted(), 3u);
}

TEST(BudgetSinkTest, StopsAtDeadline) {
  CountSink inner;
  BudgetSink budget(&inner, 0, /*deadline_seconds=*/0.02);
  EXPECT_FALSE(budget.ShouldStop());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(budget.ShouldStop());
}

TEST(BudgetSinkTest, UnlimitedNeverStops) {
  CountSink inner;
  BudgetSink budget(&inner, 0, 0);
  for (int i = 0; i < 100; ++i) EmitPair(budget, {1}, {2});
  EXPECT_FALSE(budget.ShouldStop());
}

TEST(BudgetSinkTest, PropagatesInnerStop) {
  // An inner sink that stops immediately.
  class StopSink : public ResultSink {
   public:
    void Emit(std::span<const VertexId>, std::span<const VertexId>) override {}
    bool ShouldStop() const override { return true; }
  };
  StopSink inner;
  BudgetSink budget(&inner, 0, 0);
  EXPECT_TRUE(budget.ShouldStop());
}

TEST(HashBicliqueTest, SideSplitMatters) {
  std::vector<VertexId> a = {1, 2};
  std::vector<VertexId> b = {3};
  std::vector<VertexId> ab = {1, 2, 3};
  std::vector<VertexId> empty;
  EXPECT_NE(HashBiclique(a, b), HashBiclique(b, a));
  EXPECT_NE(HashBiclique(a, b), HashBiclique(ab, empty));
}

TEST(ToStringTest, RendersBothSides) {
  Biclique b{{1, 2}, {7}};
  EXPECT_EQ(ToString(b), "{1,2} x {7}");
}

}  // namespace
}  // namespace mbe
