// Unit tests for the adaptive set-representation layer: the density
// policy, representation conversions, and the IntersectInto/IntersectSize
// overload set (word kernels, mixed kernels, and full VertexSet dispatch)
// cross-checked against the sorted-list reference from core/set_ops.h.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/set_ops.h"
#include "core/vertex_set.h"
#include "util/bitset.h"
#include "util/random.h"

namespace mbe {
namespace {

std::vector<VertexId> RandomSortedSet(size_t n, size_t universe,
                                      util::Rng& rng) {
  std::vector<VertexId> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<VertexId>(rng.Below(universe)));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<uint64_t> ToWords(std::span<const VertexId> set, size_t universe) {
  std::vector<uint64_t> words(util::WordsFor(universe), 0);
  util::SetBits(set, words);
  return words;
}

// --- Policy ----------------------------------------------------------------

TEST(VertexSetPolicyTest, ThresholdSemantics) {
  VertexSetPolicy p;  // default 0.10
  EXPECT_FALSE(p.PickBitmap(9, 100));
  EXPECT_TRUE(p.PickBitmap(10, 100));   // size >= 0.1 * universe
  EXPECT_FALSE(p.PickBitmap(0, 100));
  EXPECT_FALSE(p.PickBitmap(5, 0));     // empty universe never bitmaps
}

TEST(VertexSetPolicyTest, DegenerateSettings) {
  VertexSetPolicy force{0.0};
  EXPECT_TRUE(force.PickBitmap(0, 100));
  EXPECT_TRUE(force.PickBitmap(1, 1'000'000));
  EXPECT_FALSE(force.PickBitmap(0, 0));  // still nothing to bitmap

  VertexSetPolicy never{2.0};
  EXPECT_FALSE(never.PickBitmap(100, 100));  // even a full set stays a list
}

// --- Construction and conversion -------------------------------------------

TEST(VertexSetTest, MakeFollowsPolicy) {
  const std::vector<VertexId> sparse = {3, 17, 90};
  const std::vector<VertexId> dense = {1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 97};
  VertexSet s = VertexSet::Make(sparse, 100);
  EXPECT_EQ(s.rep(), VertexSet::Rep::kSorted);
  VertexSet d = VertexSet::Make(dense, 100);
  EXPECT_EQ(d.rep(), VertexSet::Rep::kBitmap);
  EXPECT_EQ(d.size(), dense.size());
  EXPECT_EQ(d.ToSortedList(), dense);
}

TEST(VertexSetTest, ContainsBothReps) {
  const std::vector<VertexId> elems = {0, 7, 63, 64, 65, 127};
  for (auto rep : {VertexSet::Rep::kSorted, VertexSet::Rep::kBitmap}) {
    VertexSet s = VertexSet::OfSorted(elems, 130);
    s.ConvertTo(rep);
    for (VertexId x : elems) EXPECT_TRUE(s.Contains(x)) << x;
    EXPECT_FALSE(s.Contains(1));
    EXPECT_FALSE(s.Contains(66));
    EXPECT_FALSE(s.Contains(129));
    EXPECT_FALSE(s.Contains(1000));  // beyond the universe
  }
}

TEST(VertexSetTest, ConvertRoundTripsAcrossWordBoundaries) {
  util::Rng rng(7);
  for (size_t universe : {1u, 63u, 64u, 65u, 128u, 1000u}) {
    auto elems = RandomSortedSet(universe / 2 + 1, universe, rng);
    VertexSet s = VertexSet::OfSorted(elems, universe);
    s.ConvertTo(VertexSet::Rep::kBitmap);
    EXPECT_EQ(s.size(), elems.size());
    s.ConvertTo(VertexSet::Rep::kSorted);
    EXPECT_EQ(s.ToSortedList(), elems) << "universe=" << universe;
  }
}

TEST(VertexSetTest, AdaptReportsConversions) {
  VertexSet s = VertexSet::OfSorted({1, 2, 3, 4}, 8);  // density 0.5
  EXPECT_TRUE(s.Adapt(VertexSetPolicy{}));  // 0.5 >= 0.1 -> bitmap
  EXPECT_EQ(s.rep(), VertexSet::Rep::kBitmap);
  EXPECT_FALSE(s.Adapt(VertexSetPolicy{}));  // already there
  EXPECT_TRUE(s.Adapt(VertexSetPolicy{2.0}));  // back to a list
  EXPECT_EQ(s.rep(), VertexSet::Rep::kSorted);
}

TEST(VertexSetTest, EqualityIsRepresentationIndependent) {
  const std::vector<VertexId> elems = {2, 3, 5, 7};
  VertexSet list = VertexSet::OfSorted(elems, 10);
  VertexSet bitmap = VertexSet::OfBitmap(ToWords(elems, 10), 10);
  EXPECT_EQ(list, bitmap);
  VertexSet other = VertexSet::OfSorted({2, 3, 5, 8}, 10);
  EXPECT_FALSE(list == other);
}

// --- Kernel overload set ----------------------------------------------------

TEST(SetKernelsTest, WordKernelsMatchListReference) {
  util::Rng rng(11);
  for (size_t universe : {40u, 64u, 130u, 500u}) {
    auto a = RandomSortedSet(universe / 3, universe, rng);
    auto b = RandomSortedSet(universe / 2, universe, rng);
    std::vector<VertexId> want;
    Intersect(a, b, &want);

    auto wa = ToWords(a, universe), wb = ToWords(b, universe);
    std::vector<uint64_t> wout(wa.size());
    IntersectInto(wa, wb, std::span<uint64_t>(wout));
    std::vector<VertexId> got;
    util::AppendBitsToList(wout, &got);
    EXPECT_EQ(got, want) << "universe=" << universe;
    EXPECT_EQ(IntersectSize(std::span<const uint64_t>(wa),
                            std::span<const uint64_t>(wb)),
              want.size());
  }
}

TEST(SetKernelsTest, WordKernelAliasingIsSafe) {
  const size_t universe = 200;
  util::Rng rng(13);
  auto a = RandomSortedSet(60, universe, rng);
  auto b = RandomSortedSet(60, universe, rng);
  auto wa = ToWords(a, universe), wb = ToWords(b, universe);
  std::vector<VertexId> want;
  Intersect(a, b, &want);
  // out aliases the first operand — the in-place form the enumerator uses.
  IntersectInto(wa, wb, std::span<uint64_t>(wa));
  std::vector<VertexId> got;
  util::AppendBitsToList(wa, &got);
  EXPECT_EQ(got, want);
}

TEST(SetKernelsTest, MixedKernelsMatchListReference) {
  util::Rng rng(17);
  const size_t universe = 300;
  auto a = RandomSortedSet(80, universe, rng);
  auto b = RandomSortedSet(150, universe, rng);
  std::vector<VertexId> want;
  Intersect(a, b, &want);

  auto wb = ToWords(b, universe);
  std::vector<VertexId> got;
  IntersectInto(std::span<const VertexId>(a), wb, &got);
  EXPECT_EQ(got, want);
  EXPECT_EQ(IntersectSize(std::span<const VertexId>(a),
                          std::span<const uint64_t>(wb)),
            want.size());
}

TEST(SetKernelsTest, IntersectIntoStrategiesAgree) {
  util::Rng rng(19);
  for (int round = 0; round < 50; ++round) {
    const size_t universe = 16 + rng.Below(512);
    auto a = RandomSortedSet(rng.Below(universe), universe, rng);
    auto b = RandomSortedSet(rng.Below(universe), universe, rng);
    std::vector<VertexId> merge, gallop, auto_out;
    IntersectInto(a, b, &merge, IntersectStrategy::kMerge);
    IntersectInto(a, b, &gallop, IntersectStrategy::kGallop);
    IntersectInto(a, b, &auto_out, IntersectStrategy::kAuto);
    EXPECT_EQ(gallop, merge) << "round=" << round;
    EXPECT_EQ(auto_out, merge) << "round=" << round;
  }
}

TEST(SetKernelsTest, VertexSetDispatchAllRepPairings) {
  util::Rng rng(23);
  const size_t universe = 256;
  auto a = RandomSortedSet(90, universe, rng);
  auto b = RandomSortedSet(120, universe, rng);
  std::vector<VertexId> want;
  Intersect(a, b, &want);

  for (auto ra : {VertexSet::Rep::kSorted, VertexSet::Rep::kBitmap}) {
    for (auto rb : {VertexSet::Rep::kSorted, VertexSet::Rep::kBitmap}) {
      VertexSet sa = VertexSet::OfSorted(a, universe);
      VertexSet sb = VertexSet::OfSorted(b, universe);
      sa.ConvertTo(ra);
      sb.ConvertTo(rb);
      VertexSet out;
      IntersectInto(sa, sb, &out);
      EXPECT_EQ(out.ToSortedList(), want);
      EXPECT_EQ(out.universe(), universe);
      // Bitmap result only when both operands are bitmaps.
      const bool both_bitmap = ra == VertexSet::Rep::kBitmap &&
                               rb == VertexSet::Rep::kBitmap;
      EXPECT_EQ(out.rep() == VertexSet::Rep::kBitmap, both_bitmap);
      EXPECT_EQ(IntersectSize(sa, sb), want.size());
    }
  }
}

TEST(SetKernelsTest, EmptyOperands) {
  VertexSet empty = VertexSet::OfSorted({}, 64);
  VertexSet full = VertexSet::Make(std::vector<VertexId>{0, 1, 2, 3}, 64,
                                   VertexSetPolicy{0.0});
  VertexSet out;
  IntersectInto(empty, full, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(IntersectSize(empty, full), 0u);
  // Zero-universe sets intersect to nothing without touching words.
  VertexSet z1 = VertexSet::OfSorted({}, 0), z2 = VertexSet::OfSorted({}, 0);
  IntersectInto(z1, z2, &out);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace mbe
