// Unit and property tests for the sorted-set kernels, including the
// galloping path taken on lopsided operand sizes and the membership-mask
// operations.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/set_ops.h"
#include "util/random.h"

namespace mbe {
namespace {

std::vector<VertexId> RandomSorted(size_t max_len, size_t universe,
                                   util::Rng& rng) {
  std::set<VertexId> s;
  const size_t len = rng.Below(max_len + 1);
  for (size_t i = 0; i < len; ++i) {
    s.insert(static_cast<VertexId>(rng.Below(universe)));
  }
  return {s.begin(), s.end()};
}

std::vector<VertexId> RefIntersect(const std::vector<VertexId>& a,
                                   const std::vector<VertexId>& b) {
  std::vector<VertexId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

// --- Hand-written cases ------------------------------------------------------

TEST(SetOpsTest, IntersectBasic) {
  std::vector<VertexId> a = {1, 3, 5, 7};
  std::vector<VertexId> b = {3, 4, 5, 8};
  std::vector<VertexId> out;
  Intersect(a, b, &out);
  EXPECT_EQ(out, (std::vector<VertexId>{3, 5}));
  EXPECT_EQ(IntersectSize(a, b), 2u);
}

TEST(SetOpsTest, IntersectEmptyAndDisjoint) {
  std::vector<VertexId> a = {1, 2};
  std::vector<VertexId> empty;
  std::vector<VertexId> out;
  Intersect(a, empty, &out);
  EXPECT_TRUE(out.empty());
  Intersect(empty, a, &out);
  EXPECT_TRUE(out.empty());
  std::vector<VertexId> b = {3, 4};
  Intersect(a, b, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(IntersectSize(a, b), 0u);
}

TEST(SetOpsTest, IntersectSizeCappedStopsEarly) {
  std::vector<VertexId> a = {1, 2, 3, 4, 5};
  std::vector<VertexId> b = {1, 2, 3, 4, 5};
  EXPECT_EQ(IntersectSizeCapped(a, b, 2), 2u);
  EXPECT_EQ(IntersectSizeCapped(a, b, 100), 5u);
  EXPECT_EQ(IntersectSizeCapped(a, b, 5), 5u);
}

TEST(SetOpsTest, IsSubset) {
  EXPECT_TRUE(IsSubset(std::vector<VertexId>{2, 4},
                       std::vector<VertexId>{1, 2, 3, 4}));
  EXPECT_FALSE(IsSubset(std::vector<VertexId>{2, 5},
                        std::vector<VertexId>{1, 2, 3, 4}));
  EXPECT_TRUE(IsSubset(std::vector<VertexId>{}, std::vector<VertexId>{1}));
  EXPECT_FALSE(IsSubset(std::vector<VertexId>{1}, std::vector<VertexId>{}));
}

TEST(SetOpsTest, UnionAndDifference) {
  std::vector<VertexId> a = {1, 3, 5};
  std::vector<VertexId> b = {2, 3, 6};
  std::vector<VertexId> out;
  Union(a, b, &out);
  EXPECT_EQ(out, (std::vector<VertexId>{1, 2, 3, 5, 6}));
  Difference(a, b, &out);
  EXPECT_EQ(out, (std::vector<VertexId>{1, 5}));
  Difference(b, a, &out);
  EXPECT_EQ(out, (std::vector<VertexId>{2, 6}));
}

TEST(SetOpsTest, Contains) {
  std::vector<VertexId> a = {2, 4, 9};
  EXPECT_TRUE(Contains(a, 4));
  EXPECT_FALSE(Contains(a, 5));
  EXPECT_FALSE(Contains(std::vector<VertexId>{}, 1));
}

// --- Property sweep vs the standard library ---------------------------------

class SetOpsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SetOpsPropertyTest, AgreesWithStdOnRandomSets) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const size_t universe = 1 + rng.Below(300);
    auto a = RandomSorted(60, universe, rng);
    auto b = RandomSorted(60, universe, rng);

    std::vector<VertexId> got;
    Intersect(a, b, &got);
    EXPECT_EQ(got, RefIntersect(a, b));
    EXPECT_EQ(IntersectSize(a, b), RefIntersect(a, b).size());

    std::vector<VertexId> want_union;
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(want_union));
    Union(a, b, &got);
    EXPECT_EQ(got, want_union);

    std::vector<VertexId> want_diff;
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(want_diff));
    Difference(a, b, &got);
    EXPECT_EQ(got, want_diff);
  }
}

TEST_P(SetOpsPropertyTest, GallopingPathMatchesMerge) {
  util::Rng rng(GetParam() * 31);
  for (int round = 0; round < 50; ++round) {
    // Force the lopsided regime (ratio >= 32).
    auto small = RandomSorted(8, 100000, rng);
    auto big = RandomSorted(4000, 100000, rng);
    while (!small.empty() && big.size() / small.size() < 64) small.pop_back();
    std::vector<VertexId> got;
    Intersect(small, big, &got);
    EXPECT_EQ(got, RefIntersect(small, big));
    Intersect(big, small, &got);  // symmetric entry point
    EXPECT_EQ(got, RefIntersect(small, big));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetOpsPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// --- MembershipMask ----------------------------------------------------------

TEST(MembershipMaskTest, SetTestClear) {
  MembershipMask mask(10);
  std::vector<VertexId> s = {1, 4, 7};
  mask.Set(s);
  EXPECT_TRUE(mask.Test(1));
  EXPECT_TRUE(mask.Test(7));
  EXPECT_FALSE(mask.Test(0));
  mask.Clear(s);
  EXPECT_FALSE(mask.Test(1));
}

TEST(MembershipMaskTest, EnsureUniverseGrows) {
  MembershipMask mask(2);
  mask.EnsureUniverse(100);
  EXPECT_EQ(mask.universe(), 100u);
  std::vector<VertexId> s = {99};
  mask.Set(s);
  EXPECT_TRUE(mask.Test(99));
  // Shrinking requests are ignored.
  mask.EnsureUniverse(5);
  EXPECT_EQ(mask.universe(), 100u);
}

TEST(MembershipMaskTest, IntersectWithMaskMatchesReference) {
  util::Rng rng(9);
  for (int round = 0; round < 100; ++round) {
    auto a = RandomSorted(50, 200, rng);
    auto b = RandomSorted(50, 200, rng);
    MembershipMask mask(200);
    mask.Set(b);
    std::vector<VertexId> got;
    IntersectWithMask(a, mask, &got);
    EXPECT_EQ(got, RefIntersect(a, b));
    EXPECT_EQ(IntersectSizeWithMask(a, mask), RefIntersect(a, b).size());
    mask.Clear(b);
    EXPECT_EQ(IntersectSizeWithMask(a, mask), 0u);
  }
}

TEST(MembershipMaskTest, SetClearRoundTripsAtWordBoundaries) {
  // 63/64/65 straddle the first packed-word boundary; 127/128 the second.
  MembershipMask mask(130);
  std::vector<VertexId> boundary = {63, 64, 65, 127, 128};
  mask.Set(boundary);
  for (VertexId x : boundary) EXPECT_TRUE(mask.Test(x)) << x;
  // Neighbors of the set bits stay clear (no word-level bleed).
  for (VertexId x : {62u, 66u, 126u, 129u}) EXPECT_FALSE(mask.Test(x)) << x;
  std::vector<VertexId> lower = {63, 127};
  mask.Clear(lower);
  EXPECT_FALSE(mask.Test(63));
  EXPECT_FALSE(mask.Test(127));
  EXPECT_TRUE(mask.Test(64));
  EXPECT_TRUE(mask.Test(65));
  EXPECT_TRUE(mask.Test(128));
}

TEST(MembershipMaskTest, UniverseGrowthPreservesMarksAcrossWords) {
  // Start below one word, grow past several word boundaries, and check
  // both the preserved marks and the freshly grown region.
  MembershipMask mask(50);
  std::vector<VertexId> s = {0, 31, 49};
  mask.Set(s);
  for (size_t universe : {64u, 65u, 128u, 300u}) {
    mask.EnsureUniverse(universe);
    EXPECT_EQ(mask.universe(), universe);
    EXPECT_TRUE(mask.Test(0));
    EXPECT_TRUE(mask.Test(31));
    EXPECT_TRUE(mask.Test(49));
    const std::vector<VertexId> top = {static_cast<VertexId>(universe - 1)};
    EXPECT_FALSE(mask.Test(top[0]));
    mask.Set(top);
    EXPECT_TRUE(mask.Test(top[0]));
    mask.Clear(top);
  }
}

TEST(MembershipMaskTest, WordsExposePackedLayout) {
  MembershipMask mask(70);
  std::vector<VertexId> s = {0, 63, 64, 69};
  mask.Set(s);
  EXPECT_EQ(mask.words()[0], (uint64_t{1} << 63) | 1u);
  EXPECT_EQ(mask.words()[1], (uint64_t{1} << 5) | 1u);
}

// --- HashVertexSpan ----------------------------------------------------------

TEST(HashVertexSpanTest, EqualListsHashEqual) {
  std::vector<VertexId> a = {1, 2, 3};
  std::vector<VertexId> b = {1, 2, 3};
  EXPECT_EQ(HashVertexSpan(a), HashVertexSpan(b));
}

TEST(HashVertexSpanTest, DistinguishesOrderAndContent) {
  std::vector<VertexId> a = {1, 2, 3};
  std::vector<VertexId> b = {3, 2, 1};
  std::vector<VertexId> c = {1, 2};
  std::vector<VertexId> d = {1, 2, 4};
  EXPECT_NE(HashVertexSpan(a), HashVertexSpan(b));
  EXPECT_NE(HashVertexSpan(a), HashVertexSpan(c));
  EXPECT_NE(HashVertexSpan(a), HashVertexSpan(d));
  EXPECT_NE(HashVertexSpan(c), HashVertexSpan(std::vector<VertexId>{}));
}

TEST(HashVertexSpanTest, LowCollisionRateOnRandomSets) {
  util::Rng rng(13);
  std::set<uint64_t> hashes;
  std::set<std::vector<VertexId>> sets;
  for (int i = 0; i < 2000; ++i) {
    auto s = RandomSorted(12, 64, rng);
    if (sets.insert(s).second) hashes.insert(HashVertexSpan(s));
  }
  // Distinct sets must map to (nearly always) distinct hashes.
  EXPECT_EQ(hashes.size(), sets.size());
}

}  // namespace
}  // namespace mbe
