// Differential tests for the vectorized kernel layer (util/simd.h): every
// kernel table the build carries must byte-match the scalar bodies on
// randomized inputs spanning densities, overlaps, lopsided size ratios,
// and word-boundary shapes, and whole-engine enumeration must be
// digest-identical at every dispatch level. Run under ASan/UBSan by
// scripts/check.sh, this doubles as the fuzzer for the out-of-bounds
// hazards SIMD tails and overrunning stores invite.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "api/mbe.h"
#include "core/set_ops.h"
#include "core/sink.h"
#include "gen/generators.h"
#include "util/random.h"
#include "util/simd.h"
#include "util/simd_scalar.h"

namespace mbe {
namespace {

using simd::DispatchLevel;

// Forces a dispatch level for one scope, restoring the previous level on
// exit so test order cannot leak a pin into unrelated tests.
class ScopedDispatch {
 public:
  explicit ScopedDispatch(DispatchLevel want)
      : previous_(simd::ActiveLevel()),
        installed_(simd::ForceLevel(want) == want) {}
  ~ScopedDispatch() { simd::ForceLevel(previous_); }
  ScopedDispatch(const ScopedDispatch&) = delete;
  ScopedDispatch& operator=(const ScopedDispatch&) = delete;

  /// False when the build or CPU lacks the level (the force clamped).
  bool installed() const { return installed_; }

 private:
  DispatchLevel previous_;
  bool installed_;
};

std::vector<DispatchLevel> AvailableLevels() {
  std::vector<DispatchLevel> levels = {DispatchLevel::kScalar};
  for (DispatchLevel lvl : {DispatchLevel::kSSE42, DispatchLevel::kAVX2}) {
    ScopedDispatch forced(lvl);
    if (forced.installed()) levels.push_back(lvl);
  }
  return levels;
}

std::vector<VertexId> RandomSorted(size_t max_len, size_t universe,
                                   util::Rng& rng) {
  std::set<VertexId> s;
  const size_t len = rng.Below(max_len + 1);
  for (size_t i = 0; i < len; ++i) {
    s.insert(static_cast<VertexId>(rng.Below(universe)));
  }
  return {s.begin(), s.end()};
}

// A pair whose shape cycles through the regimes the kernels special-case:
// balanced dense, balanced sparse, lopsided (gallop territory), shared
// prefixes (high overlap), and near-boundary lengths around the 4/8-lane
// block sizes and the 16-element small-operand cutoff.
struct Pair {
  std::vector<VertexId> a, b;
};

Pair RandomPair(uint64_t shape, util::Rng& rng) {
  Pair p;
  switch (shape % 5) {
    case 0:  // balanced, dense universe -> high overlap
      p.a = RandomSorted(300, 400, rng);
      p.b = RandomSorted(300, 400, rng);
      break;
    case 1:  // balanced, sparse universe -> low overlap
      p.a = RandomSorted(200, 100000, rng);
      p.b = RandomSorted(200, 100000, rng);
      break;
    case 2:  // lopsided: tiny vs large
      p.a = RandomSorted(8, 5000, rng);
      p.b = RandomSorted(2000, 5000, rng);
      break;
    case 3: {  // b = superset of a (subset/difference edge cases)
      p.b = RandomSorted(500, 2000, rng);
      for (VertexId x : p.b) {
        if (rng.Below(3) != 0) p.a.push_back(x);
      }
      break;
    }
    default:  // lengths straddling the lane/block boundaries
      p.a = RandomSorted(1 + rng.Below(20), 64, rng);
      p.b = RandomSorted(1 + rng.Below(20), 64, rng);
      break;
  }
  return p;
}

std::vector<VertexId> PadCopy(const std::vector<VertexId>& src) {
  std::vector<VertexId> out(src.size() + simd::kStorePad, 0);
  return out;
}

// --- Kernel-table equivalence -------------------------------------------

TEST(SimdKernelTest, AllLevelsMatchScalarOnRandomPairs) {
  using namespace simd::internal;
  util::Rng rng(20240806);
  const std::vector<DispatchLevel> levels = AvailableLevels();
  ASSERT_FALSE(levels.empty());
  for (uint64_t round = 0; round < 400; ++round) {
    const Pair p = RandomPair(round, rng);
    const VertexId* a = p.a.data();
    const VertexId* b = p.b.data();
    const size_t na = p.a.size(), nb = p.b.size();

    std::vector<VertexId> ref_out = PadCopy(p.a);
    const size_t ref_inter = ScalarIntersect(a, na, b, nb, ref_out.data());
    std::vector<VertexId> ref_diff_out = PadCopy(p.a);
    const size_t ref_diff =
        ScalarDifference(a, na, b, nb, ref_diff_out.data());
    const bool ref_subset = ScalarIsSubset(a, na, b, nb);
    const size_t caps[] = {0, 1, ref_inter, ref_inter + 1, na + nb};

    for (DispatchLevel lvl : levels) {
      ScopedDispatch forced(lvl);
      ASSERT_TRUE(forced.installed());
      const simd::KernelTable& k = simd::Kernels();
      const char* name = simd::DispatchLevelName(lvl);

      std::vector<VertexId> out = PadCopy(p.a);
      const size_t n_inter = k.intersect(a, na, b, nb, out.data());
      ASSERT_EQ(n_inter, ref_inter) << name << " round " << round;
      ASSERT_TRUE(std::equal(out.begin(),
                             out.begin() + static_cast<ptrdiff_t>(n_inter),
                             ref_out.begin()))
          << name << " round " << round;

      ASSERT_EQ(k.intersect_size(a, na, b, nb), ref_inter)
          << name << " round " << round;
      for (size_t cap : caps) {
        ASSERT_EQ(k.intersect_size_capped(a, na, b, nb, cap),
                  std::min(ref_inter, cap))
            << name << " round " << round << " cap " << cap;
      }

      std::vector<VertexId> diff = PadCopy(p.a);
      const size_t n_diff = k.difference(a, na, b, nb, diff.data());
      ASSERT_EQ(n_diff, ref_diff) << name << " round " << round;
      ASSERT_TRUE(std::equal(diff.begin(),
                             diff.begin() + static_cast<ptrdiff_t>(n_diff),
                             ref_diff_out.begin()))
          << name << " round " << round;

      ASSERT_EQ(k.is_subset(a, na, b, nb), ref_subset)
          << name << " round " << round;
    }
  }
}

TEST(SimdKernelTest, MaskAndWordKernelsMatchScalar) {
  using namespace simd::internal;
  util::Rng rng(99173);
  const std::vector<DispatchLevel> levels = AvailableLevels();
  for (uint64_t round = 0; round < 300; ++round) {
    // Universe sized to land mask bits on and around word boundaries.
    const size_t universe = 1 + rng.Below(400);
    const std::vector<VertexId> marked = RandomSorted(universe, universe, rng);
    const std::vector<VertexId> probes = RandomSorted(300, universe, rng);
    std::vector<uint64_t> words((universe + 63) / 64, 0);
    for (VertexId x : marked) words[x >> 6] |= uint64_t{1} << (x & 63);
    std::vector<uint64_t> other(words.size());
    for (uint64_t& w : other) w = rng.Next();

    const size_t ref_count =
        ScalarMaskCount(probes.data(), probes.size(), words.data());
    std::vector<VertexId> ref_out = PadCopy(probes);
    const size_t ref_filtered = ScalarMaskFilter(
        probes.data(), probes.size(), words.data(), ref_out.data());
    const size_t ref_and =
        ScalarAndCount(words.data(), other.data(), words.size());

    for (DispatchLevel lvl : levels) {
      ScopedDispatch forced(lvl);
      ASSERT_TRUE(forced.installed());
      const simd::KernelTable& k = simd::Kernels();
      const char* name = simd::DispatchLevelName(lvl);

      ASSERT_EQ(k.mask_count(probes.data(), probes.size(), words.data()),
                ref_count)
          << name << " round " << round;
      std::vector<VertexId> out = PadCopy(probes);
      const size_t filtered = k.mask_filter(probes.data(), probes.size(),
                                            words.data(), out.data());
      ASSERT_EQ(filtered, ref_filtered) << name << " round " << round;
      ASSERT_TRUE(std::equal(out.begin(),
                             out.begin() + static_cast<ptrdiff_t>(filtered),
                             ref_out.begin()))
          << name << " round " << round;

      ASSERT_EQ(k.and_count(words.data(), other.data(), words.size()),
                ref_and)
          << name << " round " << round;
      std::vector<uint64_t> anded(words.size());
      k.and_words(words.data(), other.data(), anded.data(), words.size());
      for (size_t i = 0; i < words.size(); ++i) {
        ASSERT_EQ(anded[i], words[i] & other[i])
            << name << " round " << round << " word " << i;
      }
    }
  }
}

// --- Batched multi-mask kernels ------------------------------------------

// The batch kernels answer `width` single-mask queries in one pass over an
// interleaved word-transposed layout (bit x of slot w lives at bit x%64 of
// words[(x>>6)*width + w]). Every level and every width in [1, 64] must
// byte-match the long-standing per-candidate kernels.
TEST(SimdKernelTest, BatchKernelsMatchPerCandidateScalar) {
  using namespace simd::internal;
  util::Rng rng(314159);
  const std::vector<DispatchLevel> levels = AvailableLevels();
  ASSERT_FALSE(levels.empty());
  for (uint64_t round = 0; round < 150; ++round) {
    const size_t universe = 1 + rng.Below(500);
    const size_t nwords = (universe + 63) / 64;
    // Cycle widths so every value in [1, 64] (including the AVX2 fallback
    // widths with width % 4 != 0) is exercised multiple times.
    const size_t width = 1 + (round + rng.Below(7)) % 64;

    std::vector<uint64_t> batch(nwords * width, 0);
    std::vector<std::vector<uint64_t>> flat(
        width, std::vector<uint64_t>(nwords, 0));
    for (size_t w = 0; w < width; ++w) {
      for (VertexId x : RandomSorted(universe, universe, rng)) {
        batch[(static_cast<size_t>(x) >> 6) * width + w] |=
            uint64_t{1} << (x & 63);
        flat[w][x >> 6] |= uint64_t{1} << (x & 63);
      }
    }
    const std::vector<VertexId> probes = RandomSorted(200, universe, rng);
    std::vector<uint64_t> group(nwords);
    for (uint64_t& g : group) g = rng.Next();

    // Per-candidate reference: one single-mask scalar call per slot.
    std::vector<uint32_t> expect_classify(width), expect_and(width);
    for (size_t w = 0; w < width; ++w) {
      expect_classify[w] = static_cast<uint32_t>(
          ScalarMaskCount(probes.data(), probes.size(), flat[w].data()));
      expect_and[w] = static_cast<uint32_t>(
          ScalarAndCount(group.data(), flat[w].data(), nwords));
    }

    for (DispatchLevel lvl : levels) {
      ScopedDispatch forced(lvl);
      ASSERT_TRUE(forced.installed());
      const simd::KernelTable& k = simd::Kernels();
      const char* name = simd::DispatchLevelName(lvl);

      // Poisoned so a kernel that forgets to overwrite a slot fails.
      std::vector<uint32_t> counts(width, 0xdeadbeefu);
      k.classify_batch(probes.data(), probes.size(), batch.data(), width,
                       counts.data());
      for (size_t w = 0; w < width; ++w) {
        ASSERT_EQ(counts[w], expect_classify[w])
            << name << " classify round " << round << " width " << width
            << " slot " << w;
      }

      std::fill(counts.begin(), counts.end(), 0xdeadbeefu);
      k.and_count_batch(group.data(), batch.data(), nwords, width,
                        counts.data());
      for (size_t w = 0; w < width; ++w) {
        ASSERT_EQ(counts[w], expect_and[w])
            << name << " and_count round " << round << " width " << width
            << " slot " << w;
      }
    }
  }
}

// --- set_ops routing equivalence ----------------------------------------

TEST(SimdKernelTest, SetOpsIdenticalAcrossStrategiesAndLevels) {
  util::Rng rng(5511);
  const std::vector<DispatchLevel> levels = AvailableLevels();
  for (uint64_t round = 0; round < 200; ++round) {
    const Pair p = RandomPair(round, rng);
    std::vector<VertexId> expect;
    std::set_intersection(p.a.begin(), p.a.end(), p.b.begin(), p.b.end(),
                          std::back_inserter(expect));
    for (DispatchLevel lvl : levels) {
      ScopedDispatch forced(lvl);
      for (IntersectStrategy strategy :
           {IntersectStrategy::kAuto, IntersectStrategy::kMerge,
            IntersectStrategy::kGallop}) {
        std::vector<VertexId> out;
        IntersectInto(p.a, p.b, &out, strategy);
        ASSERT_EQ(out, expect)
            << simd::DispatchLevelName(lvl) << " strategy "
            << static_cast<int>(strategy) << " round " << round;
      }
      ASSERT_EQ(IntersectSize(p.a, p.b), expect.size());
      std::vector<VertexId> diff, ref_diff;
      std::set_difference(p.a.begin(), p.a.end(), p.b.begin(), p.b.end(),
                          std::back_inserter(ref_diff));
      Difference(p.a, p.b, &diff);
      ASSERT_EQ(diff, ref_diff);
      ASSERT_EQ(IsSubset(p.a, p.b),
                std::includes(p.b.begin(), p.b.end(), p.a.begin(), p.a.end()));
    }
  }
}

// --- Dispatch control ----------------------------------------------------

TEST(SimdDispatchTest, ForceLevelClampsAndRestores) {
  const DispatchLevel ambient = simd::ActiveLevel();
  const DispatchLevel max = simd::MaxSupportedLevel();
  {
    ScopedDispatch forced(DispatchLevel::kScalar);
    ASSERT_TRUE(forced.installed());
    EXPECT_EQ(simd::ActiveLevel(), DispatchLevel::kScalar);
    // Asking for more than the platform has clamps to the platform max.
    EXPECT_EQ(simd::ForceLevel(DispatchLevel::kAVX2), max);
    simd::ForceLevel(DispatchLevel::kScalar);
  }
  EXPECT_EQ(simd::ActiveLevel(), ambient);
}

TEST(SimdDispatchTest, KernelCallCountersAdvance) {
  const simd::KernelCallCounters before = simd::SnapshotKernelCalls();
  // Operands above the small-operand cutoff so the calls dispatch.
  std::vector<VertexId> a(64), b(64);
  for (size_t i = 0; i < 64; ++i) {
    a[i] = static_cast<VertexId>(2 * i);
    b[i] = static_cast<VertexId>(3 * i);
  }
  (void)IntersectSize(a, b);
  const simd::KernelCallCounters after = simd::SnapshotKernelCalls();
  EXPECT_GT(after.intersect, before.intersect);
}

// --- Whole-engine digest identity across levels --------------------------

TEST(SimdDispatchTest, EnginesDigestIdenticalAcrossLevels) {
  util::Rng rng(777);
  const std::vector<DispatchLevel> levels = AvailableLevels();
  for (int g = 0; g < 4; ++g) {
    const BipartiteGraph graph =
        gen::ErdosRenyi(30 + g * 10, 25 + g * 5, 0.15, rng.Next());
    for (Algorithm algorithm :
         {Algorithm::kMbet, Algorithm::kImbea, Algorithm::kMineLmbc}) {
      uint64_t ref_digest = 0;
      uint64_t ref_count = 0;
      for (size_t li = 0; li < levels.size(); ++li) {
        ScopedDispatch forced(levels[li]);
        FingerprintSink sink;
        Options options;
        options.algorithm = algorithm;
        RunResult run = Enumerate(graph, options, &sink);
        EXPECT_EQ(static_cast<DispatchLevel>(run.stats.kernel_dispatch),
                  levels[li]);
        if (li == 0) {
          ref_digest = sink.Digest();
          ref_count = sink.count();
        } else {
          EXPECT_EQ(sink.Digest(), ref_digest)
              << "algorithm " << static_cast<int>(algorithm) << " level "
              << simd::DispatchLevelName(levels[li]);
          EXPECT_EQ(sink.count(), ref_count);
        }
      }
    }
  }
}

// The batched frontier must be invisible in the output: any batch width,
// any thread count, any dispatch level — same digest, same count.
TEST(SimdDispatchTest, EnginesDigestIdenticalAcrossBatchWidths) {
  util::Rng rng(424242);
  const std::vector<DispatchLevel> levels = AvailableLevels();
  for (int g = 0; g < 3; ++g) {
    const BipartiteGraph graph =
        gen::ErdosRenyi(40 + g * 8, 30 + g * 6, 0.18, rng.Next());
    uint64_t ref_digest = 0;
    uint64_t ref_count = 0;
    bool have_ref = false;
    for (DispatchLevel lvl : levels) {
      ScopedDispatch forced(lvl);
      for (uint32_t width : {1u, 8u, 32u}) {
        for (unsigned threads : {1u, 8u}) {
          FingerprintSink sink;
          Options options;
          options.mbet.batch_width = width;
          options.threads = threads;
          RunResult run = Enumerate(graph, options, &sink);
          if (!have_ref) {
            ref_digest = sink.Digest();
            ref_count = sink.count();
            have_ref = true;
          } else {
            ASSERT_EQ(sink.Digest(), ref_digest)
                << simd::DispatchLevelName(lvl) << " batch_width " << width
                << " threads " << threads;
            ASSERT_EQ(sink.count(), ref_count);
          }
          if (width == 1) {
            EXPECT_EQ(run.stats.batch_kernel_calls, 0u)
                << "batch_width 1 must take the per-candidate path";
            EXPECT_EQ(run.stats.batch_candidates_classified, 0u);
          } else if (threads == 1) {
            // Graphs this size have nodes with >= 2 eligible candidates.
            EXPECT_GT(run.stats.batch_candidates_classified, 0u)
                << "batch_width " << width;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace mbe
