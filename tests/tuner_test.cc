// Tests for the workload-adaptive auto-tuner (core/tuner.h): profile
// correctness and determinism, pinned decision-table rows (synthetic
// profiles and gen:: graph families), and the end-to-end contract that an
// auto-tuned run is output-identical to a default run while recording its
// decision in the stats.

#include <gtest/gtest.h>

#include "api/mbe.h"
#include "core/tuner.h"
#include "gen/generators.h"

namespace mbe {
namespace {

TEST(TunerProfileTest, MatchesGraphShape) {
  const BipartiteGraph graph = gen::ErdosRenyi(100, 80, 0.1, 7);
  const GraphProfile p = ProfileGraph(graph, 1);
  EXPECT_EQ(p.num_left, 100u);
  EXPECT_EQ(p.num_right, 80u);
  EXPECT_EQ(p.num_edges, graph.num_edges());
  EXPECT_NEAR(p.density,
              static_cast<double>(graph.num_edges()) / (100.0 * 80.0),
              1e-12);
  EXPECT_NEAR(p.avg_right_degree,
              static_cast<double>(graph.num_edges()) / 80.0, 1e-12);
  EXPECT_GE(p.degree_skew, 1.0);
  EXPECT_GT(p.two_hop_ratio, 0.0);
}

TEST(TunerProfileTest, EmptyGraphIsAllZero) {
  const GraphProfile p = ProfileGraph(BipartiteGraph(), 1);
  EXPECT_EQ(p.num_edges, 0u);
  EXPECT_EQ(p.density, 0.0);
  EXPECT_EQ(p.two_hop_ratio, 0.0);
}

TEST(TunerProfileTest, DeterministicInSeed) {
  // The wedge sample only kicks in past 64 right vertices; use a graph
  // large enough that the sampled paths actually run.
  const BipartiteGraph graph = gen::ErdosRenyi(300, 200, 0.05, 11);
  const GraphProfile a = ProfileGraph(graph, 42);
  const GraphProfile b = ProfileGraph(graph, 42);
  EXPECT_EQ(a.two_hop_ratio, b.two_hop_ratio);
  EXPECT_EQ(a.degree_skew, b.degree_skew);
}

TEST(TunerDecisionTest, TableRowsPinned) {
  GraphProfile p;
  p.num_left = 1000;
  p.num_right = 1000;

  // Row 1: too little total work -> narrow windows, no splitting.
  p.num_edges = 100;
  p.density = 0.5;  // even a dense tiny graph stays "tiny"
  {
    const TunerDecision d = Tune(p);
    EXPECT_EQ(d.rule, TunerRule::kTiny);
    EXPECT_EQ(d.batch_width, 8u);
    EXPECT_EQ(d.max_split, 1u);
    EXPECT_EQ(d.engine, TunerEngine::kMbet);
  }

  // Row 2a: dense by edge density.
  p.num_edges = 10000;
  p.density = 0.2;
  {
    const TunerDecision d = Tune(p);
    EXPECT_EQ(d.rule, TunerRule::kDense);
    EXPECT_EQ(d.batch_width, 32u);
    EXPECT_DOUBLE_EQ(d.bitmap_density, 0.05);
    EXPECT_EQ(d.engine, TunerEngine::kMbet);
  }

  // Row 2b: sparse edges but a crowded two-hop neighborhood.
  p.density = 0.01;
  p.two_hop_ratio = 5.0;
  EXPECT_EQ(Tune(p).rule, TunerRule::kDense);

  // Row 3: hub-dominated degree distribution. BBK, bitmaps forced
  // (density 0): its witness probes run ~2x faster on word kernels and
  // MBET measured flat, so the knob is safe even when the engine is
  // pinned by the query.
  p.two_hop_ratio = 1.0;
  p.degree_skew = 20.0;
  {
    const TunerDecision d = Tune(p);
    EXPECT_EQ(d.rule, TunerRule::kSkewed);
    EXPECT_EQ(d.batch_width, 8u);
    EXPECT_EQ(d.max_split, 32u);
    EXPECT_EQ(d.engine, TunerEngine::kBbk);
    EXPECT_DOUBLE_EQ(d.bitmap_density, 0.0);
  }

  // Row 4: the measured defaults.
  p.degree_skew = 2.0;
  {
    const TunerDecision d = Tune(p);
    EXPECT_EQ(d.rule, TunerRule::kSparse);
    EXPECT_EQ(d.batch_width, 16u);
    EXPECT_EQ(d.max_split, 8u);
    EXPECT_EQ(d.engine, TunerEngine::kBbk);
    EXPECT_DOUBLE_EQ(d.bitmap_density, 0.0);
  }
}

TEST(TunerDecisionTest, SyntheticFamiliesHitExpectedRows) {
  // Dense Erdos-Renyi: ~1080 edges at density 0.3.
  EXPECT_EQ(Tune(ProfileGraph(gen::ErdosRenyi(60, 60, 0.3, 3), 1)).rule,
            TunerRule::kDense);
  // A handful of edges.
  EXPECT_EQ(Tune(ProfileGraph(gen::ErdosRenyi(8, 8, 0.2, 3), 1)).rule,
            TunerRule::kTiny);
}

TEST(TunerDecisionTest, RuleNamesStable) {
  EXPECT_STREQ(TunerRuleName(TunerRule::kNone), "none");
  EXPECT_STREQ(TunerRuleName(TunerRule::kTiny), "tiny");
  EXPECT_STREQ(TunerRuleName(TunerRule::kDense), "dense");
  EXPECT_STREQ(TunerRuleName(TunerRule::kSkewed), "skewed");
  EXPECT_STREQ(TunerRuleName(TunerRule::kSparse), "sparse");
}

TEST(TunerDecisionTest, EngineNamesStable) {
  EXPECT_STREQ(TunerEngineName(TunerEngine::kNone), "none");
  EXPECT_STREQ(TunerEngineName(TunerEngine::kMbet), "MBET");
  EXPECT_STREQ(TunerEngineName(TunerEngine::kBbk), "BBK");
}

TEST(TunerEndToEndTest, AutoTunedRunIsOutputIdenticalAndRecorded) {
  const BipartiteGraph graph = gen::ErdosRenyi(50, 40, 0.15, 9);

  FingerprintSink ref;
  Options base;
  RunResult base_run;
  ASSERT_TRUE(Enumerate(graph, base, &ref, &base_run).ok());
  EXPECT_EQ(base_run.stats.auto_tuned, 0u);

  FingerprintSink tuned;
  Options o;
  o.auto_tune = true;
  RunResult run;
  ASSERT_TRUE(Enumerate(graph, o, &tuned, &run).ok());
  EXPECT_EQ(run.stats.auto_tuned, 1u);
  EXPECT_NE(run.stats.tuner_rule, static_cast<uint64_t>(TunerRule::kNone));
  EXPECT_GE(run.stats.tuned_batch_width, 1u);
  EXPECT_GE(run.stats.tuned_max_split, 1u);
  EXPECT_GT(run.stats.tuned_bitmap_density_x1000, 0u);
  // This fixture is dense (density 0.15 >= 0.08), so the engine pick is
  // MBET, and the honored pick is recorded in the stats.
  EXPECT_EQ(run.stats.tuned_algorithm,
            static_cast<uint64_t>(TunerEngine::kMbet));

  EXPECT_EQ(tuned.Digest(), ref.Digest());
  EXPECT_EQ(tuned.count(), ref.count());
}

TEST(TunerEndToEndTest, EngineRecommendationDispatchesBbk) {
  // Sparse power-law shape: below every dense threshold, so the decision
  // table recommends the pivot-free BBK engine. The tuned run must honor
  // it (recorded in stats) and stay output-identical to the MBET default,
  // serial and parallel.
  const BipartiteGraph graph = gen::PowerLaw(200, 150, 1200, 0.85, 0.8, 22);
  const TunerDecision d = Tune(ProfileGraph(graph, /*seed=*/1));
  ASSERT_EQ(d.engine, TunerEngine::kBbk) << TunerRuleName(d.rule);

  FingerprintSink ref;
  ASSERT_TRUE(Enumerate(graph, Options(), &ref, nullptr).ok());

  for (unsigned threads : {1u, 4u}) {
    FingerprintSink tuned;
    Options o;
    o.auto_tune = true;
    o.threads = threads;
    RunResult run;
    ASSERT_TRUE(Enumerate(graph, o, &tuned, &run).ok());
    EXPECT_EQ(run.stats.tuned_algorithm,
              static_cast<uint64_t>(TunerEngine::kBbk))
        << "threads=" << threads;
    EXPECT_EQ(tuned.Digest(), ref.Digest()) << "threads=" << threads;
    EXPECT_EQ(tuned.count(), ref.count());
  }
}

TEST(TunerEndToEndTest, EngineRecommendationYieldsToPinnedAlgorithm) {
  // When the query pins a non-interchangeable engine, auto-tune applies
  // the knob rows but must not override the algorithm; the stats record
  // no engine pick (0 = pinned/untuned).
  const BipartiteGraph graph = gen::PowerLaw(200, 150, 1200, 0.85, 0.8, 22);
  FingerprintSink ref;
  Options pinned;
  pinned.algorithm = Algorithm::kImbea;
  ASSERT_TRUE(Enumerate(graph, pinned, &ref, nullptr).ok());

  FingerprintSink tuned;
  Options o;
  o.algorithm = Algorithm::kImbea;
  o.auto_tune = true;
  RunResult run;
  ASSERT_TRUE(Enumerate(graph, o, &tuned, &run).ok());
  EXPECT_EQ(run.stats.auto_tuned, 1u);
  EXPECT_EQ(run.stats.tuned_algorithm,
            static_cast<uint64_t>(TunerEngine::kNone));
  EXPECT_EQ(tuned.Digest(), ref.Digest());
  EXPECT_EQ(tuned.count(), ref.count());
}

TEST(TunerEndToEndTest, AutoTuneAppliesToParallelRuns) {
  // The tuned max_split feeds the parallel driver; digest identity must
  // hold there too (the dense row picks different knobs than the default).
  const BipartiteGraph graph = gen::ErdosRenyi(48, 36, 0.25, 13);
  FingerprintSink ref;
  Options base;
  ASSERT_TRUE(Enumerate(graph, base, &ref, nullptr).ok());

  FingerprintSink tuned;
  Options o;
  o.auto_tune = true;
  o.threads = 4;
  RunResult run;
  ASSERT_TRUE(Enumerate(graph, o, &tuned, &run).ok());
  EXPECT_EQ(run.stats.auto_tuned, 1u);
  EXPECT_EQ(tuned.Digest(), ref.Digest());
  EXPECT_EQ(tuned.count(), ref.count());
}

}  // namespace
}  // namespace mbe
