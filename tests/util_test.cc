// Unit tests for the utility layer: status, RNG, statistics helpers, flag
// parsing, and memory accounting.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "util/flags.h"
#include "util/memory.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/timer.h"

namespace mbe::util {
namespace {

// --- Status ------------------------------------------------------------------

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  Status s = Status::NotFound("missing.txt");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing.txt");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kIoError, StatusCode::kOutOfRange,
        StatusCode::kCorruptData, StatusCode::kUnimplemented}) {
    EXPECT_STRNE(StatusCodeName(code), "UNKNOWN");
  }
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);

  StatusOr<int> bad(Status::IoError("disk on fire"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kIoError);
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> bad(Status::IoError("nope"));
  EXPECT_DEATH((void)bad.value(), "IO_ERROR");
}

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicStreams) {
  Rng a(1), b(1), c(2);
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
  }
  bool differs = false;
  Rng a2(1);
  for (int i = 0; i < 100; ++i) differs |= a2.Next() != c.Next();
  EXPECT_TRUE(differs);
}

TEST(RngTest, BelowIsInRangeAndCoversValues) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t x = rng.Below(7);
    EXPECT_LT(x, 7u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(rng.Below(1), 0u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const uint64_t x = rng.Range(10, 12);
    EXPECT_GE(x, 10u);
    EXPECT_LE(x, 12u);
  }
  EXPECT_EQ(rng.Range(5, 5), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Chance(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

// --- RunningStat / Percentile --------------------------------------------------

TEST(RunningStatTest, MomentsMatchHandComputation) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStatTest, EmptyAndSingle) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.Add(3.5);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(PercentileTest, InterpolatesBetweenRanks) {
  std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 25.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({7}, 99), 7.0);
}

TEST(HumanFormatTest, Counts) {
  EXPECT_EQ(HumanCount(0), "0");
  EXPECT_EQ(HumanCount(999), "999");
  EXPECT_EQ(HumanCount(1500), "1.50K");
  EXPECT_EQ(HumanCount(26.6e6), "26.6M");
  EXPECT_EQ(HumanCount(19.6e9), "19.6B");
}

TEST(HumanFormatTest, Bytes) {
  EXPECT_EQ(HumanBytes(512), "512B");
  EXPECT_EQ(HumanBytes(2048), "2.00KiB");
  EXPECT_EQ(HumanBytes(3u << 20), "3.00MiB");
  EXPECT_EQ(HumanBytes(5ull << 30), "5.00GiB");
}

TEST(HumanFormatTest, Seconds) {
  EXPECT_EQ(HumanSeconds(2.5), "2.50s");
  EXPECT_EQ(HumanSeconds(0.0123), "12.3ms");
  EXPECT_EQ(HumanSeconds(12.3e-6), "12.3us");
  EXPECT_EQ(HumanSeconds(500e-9), "500ns");
}

// --- FlagParser ----------------------------------------------------------------

TEST(FlagParserTest, ParsesAllForms) {
  FlagParser flags;
  flags.AddString("name", "default", "a string");
  flags.AddInt("count", 3, "an int");
  flags.AddDouble("ratio", 0.5, "a double");
  flags.AddBool("verbose", false, "a bool");
  flags.AddBool("color", true, "another bool");

  const char* argv[] = {"prog",          "--name=alice", "--count", "17",
                        "--ratio=0.25",  "--verbose",    "--no-color",
                        "positional_arg"};
  flags.Parse(8, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetString("name"), "alice");
  EXPECT_EQ(flags.GetInt("count"), 17);
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio"), 0.25);
  EXPECT_TRUE(flags.GetBool("verbose"));
  EXPECT_FALSE(flags.GetBool("color"));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional_arg");
}

TEST(FlagParserTest, DefaultsSurviveWhenNotPassed) {
  FlagParser flags;
  flags.AddInt("x", 42, "");
  const char* argv[] = {"prog"};
  flags.Parse(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("x"), 42);
}

TEST(FlagParserTest, BoolTextForms) {
  FlagParser flags;
  flags.AddBool("a", false, "");
  flags.AddBool("b", true, "");
  const char* argv[] = {"prog", "--a=yes", "--b=off"};
  flags.Parse(3, const_cast<char**>(argv));
  EXPECT_TRUE(flags.GetBool("a"));
  EXPECT_FALSE(flags.GetBool("b"));
}

TEST(FlagParserDeathTest, BadIntegerAborts) {
  FlagParser flags;
  flags.AddInt("n", 0, "");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_DEATH(flags.Parse(2, const_cast<char**>(argv)), "expects an integer");
}

TEST(FlagParserDeathTest, WrongTypeAccessAborts) {
  FlagParser flags;
  flags.AddInt("n", 0, "");
  const char* argv[] = {"prog"};
  flags.Parse(1, const_cast<char**>(argv));
  EXPECT_DEATH((void)flags.GetString("n"), "has type");
}

TEST(FlagParserDeathTest, MissingValueAborts) {
  FlagParser flags;
  flags.AddInt("n", 0, "");
  const char* argv[] = {"prog", "--n"};
  EXPECT_DEATH(flags.Parse(2, const_cast<char**>(argv)), "missing a value");
}

// --- MemoryTracker --------------------------------------------------------------

TEST(MemoryTrackerTest, TracksCurrentAndPeak) {
  MemoryTracker t;
  t.Add(100);
  t.Add(50);
  EXPECT_EQ(t.current(), 150u);
  EXPECT_EQ(t.peak(), 150u);
  t.Sub(120);
  EXPECT_EQ(t.current(), 30u);
  EXPECT_EQ(t.peak(), 150u);
  t.Add(10);
  EXPECT_EQ(t.peak(), 150u);
  t.Reset();
  EXPECT_EQ(t.current(), 0u);
  EXPECT_EQ(t.peak(), 0u);
}

TEST(MemoryTrackerTest, PeakIsRaceFreeUnderContention) {
  MemoryTracker t;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&t]() {
      for (int j = 0; j < 10000; ++j) {
        t.Add(3);
        t.Sub(3);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.current(), 0u);
  EXPECT_LE(t.peak(), 12u);
  EXPECT_GE(t.peak(), 3u);
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.Millis(), 15.0);
  timer.Reset();
  EXPECT_LT(timer.Millis(), 15.0);
  EXPECT_GE(timer.Nanos(), 0);
}

}  // namespace
}  // namespace mbe::util
