// Wire-protocol codec tests (serve/wire.h): round-trip every message
// type, canonical encoding, total decoding under truncation/corruption,
// and the stream framer. The fuzz harness (tools/fuzz_wire.cc) hammers
// the same properties with random bytes; these tests pin the specific
// contracts down deterministically.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "serve/wire.h"
#include "util/status.h"

namespace mbe::serve {
namespace {

std::vector<uint8_t> Encode(const Message& message) {
  std::vector<uint8_t> frame;
  EXPECT_TRUE(EncodeMessage(message, &frame).ok());
  return frame;
}

/// Encode -> decode -> re-encode must reproduce the frame byte for byte
/// (the canonical-encoding property), and the decoded variant must hold
/// the same alternative.
Message RoundTrip(const Message& message) {
  const std::vector<uint8_t> frame = Encode(message);
  util::StatusOr<Message> decoded = DecodeMessage(frame);
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(TypeOf(decoded.value()), TypeOf(message));
  EXPECT_EQ(Encode(decoded.value()), frame);
  return std::move(decoded).value();
}

LoadGraphMsg MakeLoadGraph() {
  LoadGraphMsg m;
  m.name = "bench";
  m.num_left = 4;
  m.num_right = 3;
  m.edge_left = {0, 1, 2, 3, 3};
  m.edge_right = {0, 1, 2, 0, 2};
  m.order = 2;
  m.hub_first_left = false;
  m.auto_swap_sides = true;
  m.core_reduce = false;
  m.min_left = 2;
  m.min_right = 3;
  m.seed = 0xdeadbeefcafe;
  return m;
}

TEST(WireTest, HelloRoundTrip) {
  const Message out = RoundTrip(HelloMsg{kProtocolVersion});
  EXPECT_EQ(std::get<HelloMsg>(out).version, kProtocolVersion);
}

TEST(WireTest, HelloOkRoundTrip) {
  const Message out = RoundTrip(HelloOkMsg{3, 1u << 20, 8});
  const auto& m = std::get<HelloOkMsg>(out);
  EXPECT_EQ(m.version, 3u);
  EXPECT_EQ(m.max_payload, 1u << 20);
  EXPECT_EQ(m.pool_threads, 8u);
}

TEST(WireTest, LoadGraphRoundTrip) {
  const Message out = RoundTrip(MakeLoadGraph());
  const auto& m = std::get<LoadGraphMsg>(out);
  EXPECT_EQ(m.name, "bench");
  EXPECT_EQ(m.num_left, 4u);
  EXPECT_EQ(m.num_right, 3u);
  EXPECT_EQ(m.edge_left, (std::vector<VertexId>{0, 1, 2, 3, 3}));
  EXPECT_EQ(m.edge_right, (std::vector<VertexId>{0, 1, 2, 0, 2}));
  EXPECT_EQ(m.order, 2);
  EXPECT_FALSE(m.hub_first_left);
  EXPECT_TRUE(m.auto_swap_sides);
  EXPECT_FALSE(m.core_reduce);
  EXPECT_EQ(m.min_left, 2u);
  EXPECT_EQ(m.min_right, 3u);
  EXPECT_EQ(m.seed, 0xdeadbeefcafeull);
}

TEST(WireTest, LoadGraphEmptyRoundTrip) {
  LoadGraphMsg m;
  m.name = "empty";
  const Message out = RoundTrip(m);
  EXPECT_TRUE(std::get<LoadGraphMsg>(out).edge_left.empty());
}

TEST(WireTest, LoadOkRoundTrip) {
  LoadOkMsg m;
  m.name = "bench";
  m.num_left = 10;
  m.num_right = 20;
  m.num_edges = 55;
  m.epoch = 3;
  m.build_seconds = 0.125;
  const Message out = RoundTrip(m);
  EXPECT_EQ(std::get<LoadOkMsg>(out).num_edges, 55u);
  EXPECT_EQ(std::get<LoadOkMsg>(out).epoch, 3u);
  EXPECT_EQ(std::get<LoadOkMsg>(out).build_seconds, 0.125);
}

TEST(WireTest, StartSessionRoundTrip) {
  StartSessionMsg m;
  m.graph = "bench";
  m.algorithm = 4;
  m.min_left = 2;
  m.min_right = 5;
  m.max_results = 1000;
  m.max_nodes_expanded = 50000;
  m.deadline_seconds = 2.5;
  m.max_memory_bytes = 1ull << 30;
  m.batch_results = 64;
  const Message out = RoundTrip(m);
  const auto& d = std::get<StartSessionMsg>(out);
  EXPECT_EQ(d.graph, "bench");
  EXPECT_EQ(d.algorithm, 4);
  EXPECT_EQ(d.max_results, 1000u);
  EXPECT_EQ(d.deadline_seconds, 2.5);
  EXPECT_EQ(d.max_memory_bytes, 1ull << 30);
  EXPECT_EQ(d.batch_results, 64u);
}

TEST(WireTest, SessionStartedAndCancelRoundTrip) {
  EXPECT_EQ(std::get<SessionStartedMsg>(RoundTrip(SessionStartedMsg{77}))
                .session_id,
            77u);
  EXPECT_EQ(
      std::get<CancelSessionMsg>(RoundTrip(CancelSessionMsg{78})).session_id,
      78u);
}

TEST(WireTest, ResultBatchRoundTrip) {
  ResultBatchMsg m;
  m.session_id = 9;
  const VertexId l0[] = {0, 2, 4};
  const VertexId r0[] = {1};
  const VertexId l1[] = {5};
  const VertexId r1[] = {0, 3};
  m.batch.Append(l0, r0);
  m.batch.Append(l1, r1);
  const Message out = RoundTrip(m);
  const auto& d = std::get<ResultBatchMsg>(out);
  EXPECT_EQ(d.session_id, 9u);
  ASSERT_EQ(d.batch.size(), 2u);
  EXPECT_EQ(std::vector<VertexId>(d.batch.left(0).begin(),
                                  d.batch.left(0).end()),
            (std::vector<VertexId>{0, 2, 4}));
  EXPECT_EQ(std::vector<VertexId>(d.batch.right(1).begin(),
                                  d.batch.right(1).end()),
            (std::vector<VertexId>{0, 3}));
}

TEST(WireTest, EmptyResultBatchRoundTrip) {
  ResultBatchMsg m;
  m.session_id = 1;
  EXPECT_TRUE(std::get<ResultBatchMsg>(RoundTrip(m)).batch.empty());
}

TEST(WireTest, SessionDoneRoundTrip) {
  SessionDoneMsg m;
  m.session_id = 12;
  m.termination = 3;
  m.results_emitted = 400;
  m.maximal = 401;
  m.nodes_expanded = 9000;
  m.peak_charged_bytes = 1 << 16;
  m.queue_wait_ns = 12345;
  m.seconds = 1.75;
  m.digest = 0xfeedface12345678;
  m.message = "budget";
  const Message out = RoundTrip(m);
  const auto& d = std::get<SessionDoneMsg>(out);
  EXPECT_EQ(d.termination, 3);
  EXPECT_EQ(d.maximal, 401u);
  EXPECT_EQ(d.queue_wait_ns, 12345u);
  EXPECT_EQ(d.digest, 0xfeedface12345678u);
  EXPECT_EQ(d.message, "budget");
}

TEST(WireTest, RejectedAndErrorRoundTrip) {
  const Message rejected = RoundTrip(RejectedMsg{2, "draining"});
  EXPECT_EQ(std::get<RejectedMsg>(rejected).reason, 2);
  EXPECT_EQ(std::get<RejectedMsg>(rejected).detail, "draining");
  const Message error = RoundTrip(ErrorMsg{"bad frame"});
  EXPECT_EQ(std::get<ErrorMsg>(error).detail, "bad frame");
}

// --- Framing -------------------------------------------------------------

TEST(WireTest, PeekFrameIncompleteHeader) {
  const std::vector<uint8_t> frame = Encode(HelloMsg{});
  for (size_t n = 0; n < kFrameHeaderBytes; ++n) {
    size_t frame_size = 99;
    bool complete = true;
    EXPECT_TRUE(PeekFrame(std::span(frame.data(), n), &frame_size, &complete)
                    .ok());
    EXPECT_FALSE(complete);
  }
}

TEST(WireTest, PeekFrameReportsSizeOncePayloadPending) {
  const std::vector<uint8_t> frame = Encode(MakeLoadGraph());
  size_t frame_size = 0;
  bool complete = true;
  // Header present, payload not yet: size known, not complete.
  ASSERT_TRUE(PeekFrame(std::span(frame.data(), kFrameHeaderBytes),
                        &frame_size, &complete)
                  .ok());
  EXPECT_EQ(frame_size, frame.size());
  EXPECT_FALSE(complete);
  // Whole frame (plus stream tail): complete, same size.
  std::vector<uint8_t> stream = frame;
  stream.push_back(0xab);
  ASSERT_TRUE(PeekFrame(stream, &frame_size, &complete).ok());
  EXPECT_EQ(frame_size, frame.size());
  EXPECT_TRUE(complete);
}

TEST(WireTest, PeekFrameRejectsOversizedLengthClaim) {
  const std::vector<uint8_t> bytes = {0xff, 0xff, 0xff, 0xff, 1};
  size_t frame_size = 0;
  bool complete = false;
  EXPECT_EQ(PeekFrame(bytes, &frame_size, &complete).code(),
            util::StatusCode::kCorruptData);
}

TEST(WireTest, DecodeRejectsEveryTruncation) {
  const std::vector<uint8_t> frame = Encode(MakeLoadGraph());
  for (size_t n = 0; n < frame.size(); ++n) {
    EXPECT_FALSE(DecodeMessage(std::span(frame.data(), n)).ok())
        << "prefix of " << n << " bytes decoded";
  }
}

TEST(WireTest, DecodeRejectsTrailingBytes) {
  std::vector<uint8_t> frame = Encode(SessionStartedMsg{1});
  frame.push_back(0);
  EXPECT_FALSE(DecodeMessage(frame).ok());
}

TEST(WireTest, DecodeRejectsUnknownType) {
  std::vector<uint8_t> frame = Encode(HelloMsg{});
  frame[4] = 0xee;
  EXPECT_FALSE(DecodeMessage(frame).ok());
}

// --- Typed payload validation -------------------------------------------

TEST(WireTest, LoadGraphStrictBools) {
  // With name "bench" (5 bytes), the three bool bytes sit at payload
  // offsets 18..20: 4+5 name, 4+4 sides, 1 order, then the bools.
  const std::vector<uint8_t> frame = Encode(MakeLoadGraph());
  for (size_t off = 18; off <= 20; ++off) {
    std::vector<uint8_t> bad = frame;
    bad[kFrameHeaderBytes + off] = 2;
    EXPECT_FALSE(DecodeMessage(bad).ok())
        << "bool byte at payload offset " << off << " accepted value 2";
  }
  // Sanity: the offsets really are the bools — flipping within {0,1}
  // still decodes.
  std::vector<uint8_t> flipped = frame;
  flipped[kFrameHeaderBytes + 18] ^= 1;
  EXPECT_TRUE(DecodeMessage(flipped).ok());
}

TEST(WireTest, LoadGraphEdgeIdOutOfRangeRejected) {
  LoadGraphMsg m = MakeLoadGraph();
  m.edge_left[0] = m.num_left;  // one past the valid range
  EXPECT_EQ(DecodeMessage(Encode(m)).status().code(),
            util::StatusCode::kCorruptData);
  m = MakeLoadGraph();
  m.edge_right[4] = m.num_right;
  EXPECT_EQ(DecodeMessage(Encode(m)).status().code(),
            util::StatusCode::kCorruptData);
}

TEST(WireTest, LoadGraphEdgesOnEmptySideRejected) {
  LoadGraphMsg m = MakeLoadGraph();
  m.num_right = 0;
  EXPECT_EQ(DecodeMessage(Encode(m)).status().code(),
            util::StatusCode::kCorruptData);
}

TEST(WireTest, LoadGraphEdgeCountMismatchRejected) {
  // Hand-corrupt the edge-count field: with name "bench" it sits at
  // payload offset 37 (18 head + 3 bools + 8 thresholds + 8 seed).
  const std::vector<uint8_t> frame = Encode(MakeLoadGraph());
  std::vector<uint8_t> bad = frame;
  bad[kFrameHeaderBytes + 37] += 1;
  EXPECT_EQ(DecodeMessage(bad).status().code(),
            util::StatusCode::kCorruptData);
}

TEST(WireTest, ResultBatchEntryLengthOverrunRejected) {
  ResultBatchMsg m;
  m.session_id = 1;
  const VertexId l[] = {0};
  const VertexId r[] = {1};
  m.batch.Append(l, r);
  std::vector<uint8_t> frame = Encode(m);
  // Payload: 8 session id, 4 count, then entry header l_len at offset 12.
  frame[kFrameHeaderBytes + 12] = 0xff;
  EXPECT_EQ(DecodeMessage(frame).status().code(),
            util::StatusCode::kCorruptData);
}

TEST(WireTest, EncodeRejectsMismatchedEdgeArrays) {
  // Encoding writes edge_left.size() as the edge count; a mismatched
  // message must fail here instead of producing an undecodable frame.
  LoadGraphMsg m = MakeLoadGraph();
  m.edge_right.pop_back();
  std::vector<uint8_t> frame;
  EXPECT_EQ(EncodeMessage(m, &frame).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_TRUE(frame.empty());  // failed encodes leave the output untouched
}

TEST(WireTest, EncodeRejectsOverlongNames) {
  std::vector<uint8_t> frame;
  LoadGraphMsg load;
  load.name.assign(kMaxNameBytes + 1, 'x');
  EXPECT_EQ(EncodeMessage(load, &frame).code(),
            util::StatusCode::kInvalidArgument);
  StartSessionMsg start;
  start.graph.assign(kMaxNameBytes + 1, 'x');
  EXPECT_EQ(EncodeMessage(start, &frame).code(),
            util::StatusCode::kInvalidArgument);
  LoadOkMsg ok;
  ok.name.assign(kMaxNameBytes + 1, 'x');
  EXPECT_EQ(EncodeMessage(ok, &frame).code(),
            util::StatusCode::kInvalidArgument);
}

TEST(WireTest, NameOverLimitFailsDecode) {
  // EncodeMessage refuses over-long names, so hand-build the frame: a
  // kLoadGraph payload whose name field claims kMaxNameBytes + 1 bytes.
  const uint32_t n = kMaxNameBytes + 1;
  std::vector<uint8_t> frame = {0, 0, 0, 0,
                                static_cast<uint8_t>(MsgType::kLoadGraph)};
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<uint8_t>((n >> (8 * i)) & 0xff));
  }
  frame.insert(frame.end(), n, 'x');
  const auto payload =
      static_cast<uint32_t>(frame.size() - kFrameHeaderBytes);
  for (int i = 0; i < 4; ++i) {
    frame[static_cast<size_t>(i)] =
        static_cast<uint8_t>((payload >> (8 * i)) & 0xff);
  }
  EXPECT_FALSE(DecodeMessage(frame).ok());
}

// --- v2 messages (heartbeat, health, reload) -----------------------------

TEST(WireTest, PingPongRoundTrip) {
  const Message ping = RoundTrip(PingMsg{0x1122334455667788});
  EXPECT_EQ(std::get<PingMsg>(ping).token, 0x1122334455667788u);
  const Message pong = RoundTrip(PongMsg{0x8877665544332211});
  EXPECT_EQ(std::get<PongMsg>(pong).token, 0x8877665544332211u);
}

TEST(WireTest, InfoRequestRoundTripIsEmptyPayload) {
  const std::vector<uint8_t> frame = Encode(InfoRequestMsg{});
  EXPECT_EQ(frame.size(), kFrameHeaderBytes);  // no payload at all
  RoundTrip(InfoRequestMsg{});
}

TEST(WireTest, ServerInfoRoundTrip) {
  ServerInfoMsg m;
  m.pool_threads = 8;
  m.active_sessions = 3;
  m.queued_sessions = 5;
  m.graphs = 2;
  m.sessions_started = 100;
  m.sessions_completed = 97;
  m.reloads = 4;
  m.heartbeats = 12;
  m.idle_disconnects = 1;
  m.connections_accepted = 9;
  m.draining = 1;
  const Message out = RoundTrip(m);
  const auto& info = std::get<ServerInfoMsg>(out);
  EXPECT_EQ(info.pool_threads, 8u);
  EXPECT_EQ(info.queued_sessions, 5u);
  EXPECT_EQ(info.sessions_started, 100u);
  EXPECT_EQ(info.sessions_completed, 97u);
  EXPECT_EQ(info.reloads, 4u);
  EXPECT_EQ(info.heartbeats, 12u);
  EXPECT_EQ(info.idle_disconnects, 1u);
  EXPECT_EQ(info.connections_accepted, 9u);
  EXPECT_EQ(info.draining, 1);
}

TEST(WireTest, ReloadGraphRoundTripSharesLoadLayout) {
  const Message out = RoundTrip(ReloadGraphMsg{MakeLoadGraph()});
  const auto& m = std::get<ReloadGraphMsg>(out).load;
  EXPECT_EQ(m.name, "bench");
  EXPECT_EQ(m.edge_left, (std::vector<VertexId>{0, 1, 2, 3, 3}));
  EXPECT_EQ(m.seed, 0xdeadbeefcafeu);
  // Same payload bytes as the kLoadGraph encoding; only the type byte
  // (offset 4) differs.
  const std::vector<uint8_t> as_load = Encode(MakeLoadGraph());
  std::vector<uint8_t> as_reload = Encode(ReloadGraphMsg{MakeLoadGraph()});
  EXPECT_EQ(as_reload[4], static_cast<uint8_t>(MsgType::kReloadGraph));
  as_reload[4] = static_cast<uint8_t>(MsgType::kLoadGraph);
  EXPECT_EQ(as_reload, as_load);
}

TEST(WireTest, ReloadGraphValidatesLikeLoadGraph) {
  ReloadGraphMsg bad{MakeLoadGraph()};
  bad.load.edge_left.push_back(99);  // id out of range, arrays mismatched
  std::vector<uint8_t> frame;
  EXPECT_FALSE(EncodeMessage(bad, &frame).ok());
}

// --- FrameAssembler ------------------------------------------------------

std::vector<uint8_t> ConcatFrames(const std::vector<Message>& messages) {
  std::vector<uint8_t> bytes;
  for (const Message& m : messages) {
    const std::vector<uint8_t> frame = Encode(m);
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  }
  return bytes;
}

/// Feeds `bytes` to an assembler in `chunk`-sized slices and returns
/// every decoded message.
std::vector<Message> FeedChunked(const std::vector<uint8_t>& bytes,
                                 size_t chunk) {
  FrameAssembler assembler;
  std::vector<Message> out;
  for (size_t off = 0; off < bytes.size(); off += chunk) {
    const size_t n = std::min(chunk, bytes.size() - off);
    assembler.Feed(std::span<const uint8_t>(bytes.data() + off, n));
    for (;;) {
      Message message;
      auto produced = assembler.Next(&message);
      EXPECT_TRUE(produced.ok()) << produced.status().ToString();
      if (!produced.ok() || !produced.value()) break;
      out.push_back(std::move(message));
    }
  }
  EXPECT_EQ(assembler.buffered_bytes(), 0u);
  return out;
}

TEST(WireTest, AssemblerSplitInvariance) {
  SessionDoneMsg done;
  done.session_id = 5;
  done.digest = 0xabcdef;
  done.message = "fin";
  const std::vector<uint8_t> bytes = ConcatFrames(
      {HelloMsg{}, PingMsg{42}, MakeLoadGraph(), InfoRequestMsg{}, done});
  // Pathological short reads — 1 byte at a time splits every header and
  // payload — must decode identically to any other chunking.
  for (const size_t chunk : {size_t{1}, size_t{2}, size_t{3}, size_t{7},
                             size_t{4096}, bytes.size()}) {
    const std::vector<Message> out = FeedChunked(bytes, chunk);
    ASSERT_EQ(out.size(), 5u) << "chunk=" << chunk;
    EXPECT_EQ(TypeOf(out[0]), MsgType::kHello);
    EXPECT_EQ(std::get<PingMsg>(out[1]).token, 42u);
    EXPECT_EQ(std::get<LoadGraphMsg>(out[2]).name, "bench");
    EXPECT_EQ(TypeOf(out[3]), MsgType::kInfoRequest);
    EXPECT_EQ(std::get<SessionDoneMsg>(out[4]).message, "fin");
  }
}

TEST(WireTest, AssemblerPoisonsOnCorruptFrame) {
  FrameAssembler assembler;
  // Oversized length claim: instantly corrupt, and the poison sticks even
  // after valid bytes arrive — a stream that lied once cannot resync.
  const std::vector<uint8_t> bad = {0xff, 0xff, 0xff, 0xff, 0x01};
  assembler.Feed(bad);
  Message message;
  EXPECT_FALSE(assembler.Next(&message).ok());
  const std::vector<uint8_t> good = Encode(HelloMsg{});
  assembler.Feed(good);
  EXPECT_FALSE(assembler.Next(&message).ok());
}

TEST(WireTest, AssemblerPoisonsOnUndecodablePayload) {
  FrameAssembler assembler;
  std::vector<uint8_t> frame = Encode(PingMsg{1});
  frame[4] = 200;  // unknown message type, full frame present
  assembler.Feed(frame);
  Message message;
  EXPECT_FALSE(assembler.Next(&message).ok());
}

TEST(WireTest, AssemblerIdleWithoutInput) {
  FrameAssembler assembler;
  Message message;
  auto produced = assembler.Next(&message);
  ASSERT_TRUE(produced.ok());
  EXPECT_FALSE(produced.value());
  EXPECT_EQ(assembler.buffered_bytes(), 0u);
}

TEST(WireTest, RejectReasonNamesAreStable) {
  EXPECT_STREQ(RejectReasonName(RejectReason::kTooManySessions),
               "too-many-sessions");
  EXPECT_STREQ(RejectReasonName(RejectReason::kDraining), "draining");
  EXPECT_STREQ(RejectReasonName(RejectReason::kUnknownGraph),
               "unknown-graph");
  EXPECT_STREQ(RejectReasonName(RejectReason::kBadOptions), "bad-options");
}

}  // namespace
}  // namespace mbe::serve
