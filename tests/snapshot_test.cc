// Tests of the durable task frontier (snapshot/frontier.h) and checkpoint
// files (snapshot/checkpoint.h): codec canonicity and totality, frontier
// lifecycle invariants, crash-safe file round-trips, shard merging, and
// the end-to-end checkpoint/resume digest-identity contract across
// algorithms and thread counts.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/mbe.h"
#include "gen/generators.h"
#include "snapshot/checkpoint.h"
#include "snapshot/frontier.h"

namespace mbe {
namespace {

using snapshot::CompletedTask;
using snapshot::DecodeSnapshot;
using snapshot::EncodeSnapshot;
using snapshot::FrontierSnapshot;
using snapshot::GraphFingerprint;
using snapshot::MergeSnapshots;
using snapshot::ReadSnapshotFile;
using snapshot::ShardOfSeed;
using snapshot::TaskDigest;
using snapshot::TaskFrontier;
using snapshot::WriteSnapshotFile;

BipartiteGraph MediumGraph() { return gen::ErdosRenyi(24, 24, 0.4, 7); }

// Dense uniform bipartite graphs have an exponential number of maximal
// bicliques: full enumeration is far beyond any test budget, which is
// exactly what a mid-run checkpoint stop needs.
BipartiteGraph WorstCaseGraph() { return gen::ErdosRenyi(90, 90, 0.5, 11); }

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

uint64_t Word(VertexId v, uint32_t shard, uint32_t num_shards) {
  return EncodeTask({.v = v, .shard = shard, .num_shards = num_shards});
}

FrontierSnapshot SampleSnapshot() {
  FrontierSnapshot snap;
  snap.algorithm = 3;
  snap.complete = false;
  snap.shard_index = 1;
  snap.shard_count = 4;
  snap.graph_left = 24;
  snap.graph_right = 24;
  snap.graph_edges = 230;
  snap.graph_hash = 0x1234abcd5678ef00ULL;
  snap.pending = {Word(2, 0, 1), Word(5, 1, 3), Word(5, 2, 3)};
  snap.completed = {
      {Word(1, 0, 1), {0x1111, 0x2222, 3}},
      {Word(5, 0, 3), {0x3333, 0x4444, 7}},
  };
  return snap;
}

// --- Codec -----------------------------------------------------------------

TEST(SnapshotCodecTest, RoundTripIsCanonical) {
  const FrontierSnapshot snap = SampleSnapshot();
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeSnapshot(snap, &bytes).ok());

  util::StatusOr<FrontierSnapshot> decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value(), snap);

  // Canonical: the decoded snapshot re-encodes to exactly the input bytes.
  std::vector<uint8_t> again;
  ASSERT_TRUE(EncodeSnapshot(decoded.value(), &again).ok());
  EXPECT_EQ(again, bytes);
}

TEST(SnapshotCodecTest, EmptyCompleteSnapshotRoundTrips) {
  FrontierSnapshot snap;
  snap.complete = true;
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeSnapshot(snap, &bytes).ok());
  util::StatusOr<FrontierSnapshot> decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), snap);
}

TEST(SnapshotCodecTest, EveryTruncationFailsTyped) {
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeSnapshot(SampleSnapshot(), &bytes).ok());
  for (size_t len = 0; len < bytes.size(); ++len) {
    util::StatusOr<FrontierSnapshot> decoded =
        DecodeSnapshot(std::span<const uint8_t>(bytes.data(), len));
    ASSERT_FALSE(decoded.ok()) << "truncation to " << len << " decoded";
    const util::StatusCode code = decoded.status().code();
    EXPECT_TRUE(code == util::StatusCode::kCorruptData ||
                code == util::StatusCode::kInvalidArgument)
        << "len " << len << ": " << decoded.status().ToString();
  }
}

TEST(SnapshotCodecTest, VersionSkewIsInvalidArgumentNotCorruption) {
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeSnapshot(SampleSnapshot(), &bytes).ok());
  bytes[4] = 0x7f;  // version field follows the 4-byte magic
  util::StatusOr<FrontierSnapshot> decoded = DecodeSnapshot(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(SnapshotCodecTest, BadMagicIsCorruptData) {
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeSnapshot(SampleSnapshot(), &bytes).ok());
  bytes[0] ^= 0xff;
  util::StatusOr<FrontierSnapshot> decoded = DecodeSnapshot(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), util::StatusCode::kCorruptData);
}

TEST(SnapshotCodecTest, PayloadCorruptionTripsChecksum) {
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeSnapshot(SampleSnapshot(), &bytes).ok());
  // Flip one byte in every position past the version; whatever structural
  // check fires first, the decode must fail typed, never crash or
  // silently succeed with altered content.
  for (size_t i = 8; i < bytes.size(); ++i) {
    std::vector<uint8_t> corrupt = bytes;
    corrupt[i] ^= 0x40;
    util::StatusOr<FrontierSnapshot> decoded = DecodeSnapshot(corrupt);
    if (decoded.ok()) {
      ADD_FAILURE() << "flipping byte " << i << " went unnoticed";
    } else {
      EXPECT_EQ(decoded.status().code(), util::StatusCode::kCorruptData)
          << "byte " << i;
    }
  }
}

TEST(SnapshotCodecTest, TrailingBytesRejected) {
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeSnapshot(SampleSnapshot(), &bytes).ok());
  bytes.push_back(0);
  util::StatusOr<FrontierSnapshot> decoded = DecodeSnapshot(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), util::StatusCode::kCorruptData);
}

TEST(SnapshotCodecTest, EncodeRejectsInvariantViolations) {
  std::vector<uint8_t> bytes;
  {
    FrontierSnapshot snap = SampleSnapshot();
    std::swap(snap.pending[0], snap.pending[1]);  // unsorted
    EXPECT_FALSE(EncodeSnapshot(snap, &bytes).ok());
  }
  {
    FrontierSnapshot snap = SampleSnapshot();
    snap.pending.push_back(snap.pending.back());  // duplicate
    EXPECT_FALSE(EncodeSnapshot(snap, &bytes).ok());
  }
  {
    FrontierSnapshot snap = SampleSnapshot();
    snap.pending.push_back(0);  // num_shards == 0: invalid task word
    EXPECT_FALSE(EncodeSnapshot(snap, &bytes).ok());
  }
  {
    FrontierSnapshot snap = SampleSnapshot();
    snap.completed.push_back({snap.pending[0], {}});  // overlap
    EXPECT_FALSE(EncodeSnapshot(snap, &bytes).ok());
  }
  {
    FrontierSnapshot snap = SampleSnapshot();
    snap.complete = true;  // complete with pending tasks
    EXPECT_FALSE(EncodeSnapshot(snap, &bytes).ok());
  }
  EXPECT_TRUE(bytes.empty());  // failed encodes leave the output untouched
}

// --- Frontier lifecycle ----------------------------------------------------

TEST(TaskFrontierTest, SeedSplitCompleteLifecycle) {
  const BipartiteGraph graph = MediumGraph();
  TaskFrontier frontier(/*algorithm=*/0, 0, 1, graph);
  frontier.AddPending(Word(3, 0, 1));
  frontier.AddPending(Word(7, 0, 1));
  EXPECT_EQ(frontier.pending_count(), 2u);

  frontier.RecordSplit(Word(3, 0, 1), 3);
  EXPECT_EQ(frontier.pending_count(), 4u);  // 3 shards + the other seed

  frontier.MarkCompleted(Word(3, 0, 3), {10, 20, 1});
  frontier.MarkCompleted(Word(3, 1, 3), {30, 40, 2});
  frontier.MarkCompleted(Word(3, 2, 3), {50, 60, 3});
  frontier.MarkCompleted(Word(7, 0, 1), {70, 80, 4});
  EXPECT_EQ(frontier.pending_count(), 0u);
  EXPECT_EQ(frontier.completed_count(), 4u);

  const TaskDigest merged = frontier.MergedDigest();
  EXPECT_EQ(merged.sum, 10u + 30 + 50 + 70);
  EXPECT_EQ(merged.xr, 20ull ^ 40 ^ 60 ^ 80);
  EXPECT_EQ(merged.count, 10u);

  const FrontierSnapshot snap = frontier.BuildSnapshot();
  EXPECT_TRUE(snap.complete);
  EXPECT_EQ(snap.completed.size(), 4u);
  EXPECT_EQ(snap.graph_hash, GraphFingerprint(graph));
}

TEST(TaskFrontierTest, MergedDigestIsSplitStructureIndependent) {
  const BipartiteGraph graph = MediumGraph();
  // Whole-subtree completion...
  TaskFrontier whole(0, 0, 1, graph);
  whole.AddPending(Word(3, 0, 1));
  whole.MarkCompleted(Word(3, 0, 1), {90, 12, 6});
  // ...and the same emissions spread over 2 shards.
  TaskFrontier split(0, 0, 1, graph);
  split.AddPending(Word(3, 0, 1));
  split.RecordSplit(Word(3, 0, 1), 2);
  split.MarkCompleted(Word(3, 0, 2), {40, 8, 2});
  split.MarkCompleted(Word(3, 1, 2), {50, 4, 4});
  EXPECT_EQ(whole.MergedDigest(), split.MergedDigest());
  EXPECT_EQ(whole.MergedDigest().Value(), split.MergedDigest().Value());
}

TEST(TaskFrontierTest, RestoreRejectsMismatchedHeader) {
  const BipartiteGraph graph = MediumGraph();
  TaskFrontier frontier(0, 0, 1, graph);
  frontier.AddPending(Word(3, 0, 1));
  FrontierSnapshot snap = frontier.BuildSnapshot();

  {
    TaskFrontier other(/*algorithm=*/1, 0, 1, graph);
    EXPECT_EQ(other.Restore(snap).code(),
              util::StatusCode::kInvalidArgument);
  }
  {
    const BipartiteGraph different = gen::ErdosRenyi(24, 24, 0.4, 8);
    TaskFrontier other(0, 0, 1, different);
    EXPECT_EQ(other.Restore(snap).code(),
              util::StatusCode::kInvalidArgument);
  }
  {
    TaskFrontier same(0, 0, 1, graph);
    EXPECT_TRUE(same.Restore(snap).ok());
    EXPECT_EQ(same.pending_count(), 1u);
  }
}

TEST(TaskFrontierTest, RestoreRejectsTasksBeyondTheGraph) {
  // The codec validates task words structurally; the seed-vertex range
  // check needs the graph and lives in Restore — for pending *and*
  // completed tasks (a forged completed word with a valid checksum must
  // not slip into the digest bookkeeping).
  const BipartiteGraph graph = MediumGraph();  // 24 right vertices
  TaskFrontier frontier(0, 0, 1, graph);
  frontier.AddPending(Word(3, 0, 1));
  const FrontierSnapshot base = frontier.BuildSnapshot();

  {
    FrontierSnapshot snap = base;
    snap.pending.push_back(Word(24, 0, 1));  // out of range
    TaskFrontier other(0, 0, 1, graph);
    EXPECT_EQ(other.Restore(snap).code(),
              util::StatusCode::kInvalidArgument);
  }
  {
    FrontierSnapshot snap = base;
    snap.completed.push_back({Word(24, 0, 1), {1, 1, 1}});  // out of range
    TaskFrontier other(0, 0, 1, graph);
    EXPECT_EQ(other.Restore(snap).code(),
              util::StatusCode::kInvalidArgument);
  }
}

TEST(TaskFrontierTest, GraphFingerprintDistinguishesGraphs) {
  EXPECT_EQ(GraphFingerprint(MediumGraph()), GraphFingerprint(MediumGraph()));
  EXPECT_NE(GraphFingerprint(MediumGraph()),
            GraphFingerprint(gen::ErdosRenyi(24, 24, 0.4, 8)));
}

TEST(TaskFrontierTest, ShardOfSeedPartitionsAllSeeds) {
  std::vector<uint64_t> per_shard(4, 0);
  for (VertexId v = 0; v < 1000; ++v) {
    const uint32_t s = ShardOfSeed(v, 4);
    ASSERT_LT(s, 4u);
    ++per_shard[s];
  }
  // splitmix64 mixing spreads consecutive ids roughly evenly.
  for (uint64_t n : per_shard) EXPECT_GT(n, 150u);
}

// --- Snapshot files --------------------------------------------------------

TEST(SnapshotFileTest, WriteReadRoundTripAndOverwrite) {
  const std::string path = TempPath("roundtrip.pmbf");
  const FrontierSnapshot snap = SampleSnapshot();
  ASSERT_TRUE(WriteSnapshotFile(path, snap).ok());
  util::StatusOr<FrontierSnapshot> read = ReadSnapshotFile(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value(), snap);

  // Overwrite via the same tmp+rename path.
  FrontierSnapshot second = snap;
  second.pending.push_back(Word(9, 0, 1));
  ASSERT_TRUE(WriteSnapshotFile(path, second).ok());
  read = ReadSnapshotFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), second);
  std::remove(path.c_str());
}

TEST(SnapshotFileTest, MissingFileIsIoError) {
  util::StatusOr<FrontierSnapshot> read =
      ReadSnapshotFile(TempPath("does-not-exist.pmbf"));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), util::StatusCode::kIoError);
}

FrontierSnapshot CompleteShard(uint32_t index, uint32_t count,
                               std::vector<CompletedTask> completed) {
  FrontierSnapshot snap;
  snap.algorithm = 0;
  snap.complete = true;
  snap.shard_index = index;
  snap.shard_count = count;
  snap.graph_left = 24;
  snap.graph_right = 24;
  snap.graph_edges = 230;
  snap.graph_hash = 42;
  snap.completed = std::move(completed);
  return snap;
}

TEST(SnapshotMergeTest, MergesDisjointCompleteShards) {
  const FrontierSnapshot a =
      CompleteShard(0, 2, {{Word(1, 0, 1), {1, 2, 1}}});
  const FrontierSnapshot b =
      CompleteShard(1, 2, {{Word(2, 0, 1), {3, 4, 1}}});
  const std::vector<FrontierSnapshot> shards = {b, a};  // any order
  util::StatusOr<FrontierSnapshot> merged = MergeSnapshots(shards);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_TRUE(merged.value().complete);
  EXPECT_EQ(merged.value().shard_count, 1u);
  EXPECT_EQ(merged.value().completed.size(), 2u);
  const TaskDigest d = merged.value().MergedDigest();
  EXPECT_EQ(d.sum, 4u);
  EXPECT_EQ(d.xr, 2ull ^ 4);
  EXPECT_EQ(d.count, 2u);
}

TEST(SnapshotMergeTest, RejectsIncompleteDuplicateAndMismatchedShards) {
  {
    FrontierSnapshot incomplete = CompleteShard(0, 2, {});
    incomplete.complete = false;
    incomplete.pending = {Word(1, 0, 1)};
    const std::vector<FrontierSnapshot> shards = {incomplete,
                                                  CompleteShard(1, 2, {})};
    EXPECT_EQ(MergeSnapshots(shards).status().code(),
              util::StatusCode::kInvalidArgument);
  }
  {
    const std::vector<FrontierSnapshot> shards = {CompleteShard(0, 2, {}),
                                                  CompleteShard(0, 2, {})};
    EXPECT_FALSE(MergeSnapshots(shards).ok());  // duplicate index
  }
  {
    const std::vector<FrontierSnapshot> shards = {CompleteShard(0, 2, {})};
    EXPECT_FALSE(MergeSnapshots(shards).ok());  // missing shard 1
  }
  {
    FrontierSnapshot other_graph = CompleteShard(1, 2, {});
    other_graph.graph_hash = 43;
    const std::vector<FrontierSnapshot> shards = {CompleteShard(0, 2, {}),
                                                  other_graph};
    EXPECT_FALSE(MergeSnapshots(shards).ok());
  }
  {
    // The same task completed in two shards: corruption, not config error.
    const std::vector<FrontierSnapshot> shards = {
        CompleteShard(0, 2, {{Word(1, 0, 1), {1, 2, 1}}}),
        CompleteShard(1, 2, {{Word(1, 0, 1), {1, 2, 1}}})};
    EXPECT_EQ(MergeSnapshots(shards).status().code(),
              util::StatusCode::kCorruptData);
  }
}

// --- End-to-end checkpoint / resume ----------------------------------------

struct DurableRun {
  uint64_t digest = 0;
  uint64_t completed = 0;
  uint64_t pending = 0;
  uint64_t emitted = 0;
  Termination termination = Termination::kComplete;
};

DurableRun RunDurable(const BipartiteGraph& graph, Algorithm algorithm,
                      unsigned threads, const std::string& path,
                      bool resume = false) {
  // Fresh durable runs refuse to overwrite an existing snapshot; clear
  // any leftover from an earlier (possibly crashed) test run.
  if (!resume) std::remove(path.c_str());
  Options options;
  options.algorithm = algorithm;
  options.threads = threads;
  options.checkpoint.path = path;
  options.checkpoint.resume = resume;
  options.checkpoint.every_s = 3600;  // only the final snapshot
  CountSink sink;
  RunResult run;
  const util::Status status = Enumerate(graph, options, &sink, &run);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return {run.frontier_digest, run.frontier_completed, run.frontier_pending,
          run.results_emitted, run.termination};
}

TEST(CheckpointResumeTest, DigestIdenticalAcrossAlgorithmsAndThreads) {
  const BipartiteGraph graph = MediumGraph();
  for (Algorithm algorithm :
       {Algorithm::kMbet, Algorithm::kMbea, Algorithm::kImbea,
        Algorithm::kBbk}) {
    uint64_t reference_digest = 0;
    uint64_t reference_count = 0;
    for (unsigned threads : {1u, 4u}) {
      const std::string path = TempPath("digest.pmbf");
      const DurableRun run = RunDurable(graph, algorithm, threads, path);
      EXPECT_EQ(run.termination, Termination::kComplete);
      EXPECT_EQ(run.pending, 0u);
      EXPECT_GT(run.emitted, 0u);
      if (reference_digest == 0) {
        reference_digest = run.digest;
        reference_count = run.emitted;
      }
      // The frontier digest is independent of thread count, scheduling,
      // and split structure.
      EXPECT_EQ(run.digest, reference_digest)
          << AlgorithmName(algorithm) << " x" << threads;
      EXPECT_EQ(run.emitted, reference_count);

      // The final snapshot on disk carries the same digest.
      util::StatusOr<FrontierSnapshot> snap = ReadSnapshotFile(path);
      ASSERT_TRUE(snap.ok());
      EXPECT_TRUE(snap.value().complete);
      EXPECT_EQ(snap.value().MergedDigest().Value(), run.digest);
      std::remove(path.c_str());
    }
  }
}

TEST(CheckpointResumeTest, InterruptedRunResumesToReferenceDigest) {
  const BipartiteGraph graph = MediumGraph();
  for (Algorithm algorithm :
       {Algorithm::kMbet, Algorithm::kMbea, Algorithm::kImbea,
        Algorithm::kBbk}) {
    for (unsigned threads : {1u, 4u}) {
      const std::string ref_path = TempPath("ref.pmbf");
      const DurableRun reference =
          RunDurable(graph, algorithm, threads, ref_path);
      std::remove(ref_path.c_str());

      // Interrupt: a small result budget stops the run mid-enumeration;
      // truncated tasks stay pending in the final snapshot.
      const std::string path = TempPath("interrupted.pmbf");
      std::remove(path.c_str());
      Options options;
      options.algorithm = algorithm;
      options.threads = threads;
      options.checkpoint.path = path;
      options.checkpoint.every_s = 3600;
      options.control.max_results = reference.emitted / 3 + 1;
      CountSink sink;
      RunResult run;
      ASSERT_TRUE(Enumerate(graph, options, &sink, &run).ok());
      EXPECT_EQ(run.termination, Termination::kBudget);
      EXPECT_GT(run.frontier_pending, 0u)
          << AlgorithmName(algorithm) << " x" << threads;

      // Resume without the budget: the merged digest must be bit-identical
      // to the uninterrupted run's — completed tasks were not re-run,
      // interrupted ones were re-run exactly once.
      const DurableRun resumed =
          RunDurable(graph, algorithm, threads, path, /*resume=*/true);
      EXPECT_EQ(resumed.termination, Termination::kComplete);
      EXPECT_EQ(resumed.pending, 0u);
      EXPECT_EQ(resumed.digest, reference.digest)
          << AlgorithmName(algorithm) << " x" << threads;
      std::remove(path.c_str());
    }
  }
}

TEST(CheckpointResumeTest, ResumeOfCompleteSnapshotIsIdempotentNoOp) {
  const BipartiteGraph graph = MediumGraph();
  const std::string path = TempPath("idempotent.pmbf");
  const DurableRun first = RunDurable(graph, Algorithm::kMbet, 2, path);
  EXPECT_EQ(first.termination, Termination::kComplete);

  const DurableRun again =
      RunDurable(graph, Algorithm::kMbet, 2, path, /*resume=*/true);
  EXPECT_EQ(again.termination, Termination::kComplete);
  EXPECT_EQ(again.emitted, 0u);  // nothing re-enumerated, nothing re-emitted
  EXPECT_EQ(again.digest, first.digest);
  EXPECT_EQ(again.completed, first.completed);
  std::remove(path.c_str());
}

TEST(CheckpointResumeTest, FreshRunRefusesToOverwriteExistingSnapshot) {
  // A durable run without resume must not clobber an existing snapshot —
  // its first periodic write would silently destroy a resumable state if
  // the user merely forgot --resume.
  const BipartiteGraph graph = MediumGraph();
  const std::string path = TempPath("overwrite.pmbf");
  const DurableRun first = RunDurable(graph, Algorithm::kMbet, 2, path);
  EXPECT_EQ(first.termination, Termination::kComplete);

  Options options;
  options.algorithm = Algorithm::kMbet;
  options.threads = 2;
  options.checkpoint.path = path;
  options.checkpoint.every_s = 3600;
  CountSink sink;
  const util::Status status = Enumerate(graph, options, &sink, nullptr);
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(sink.count(), 0u);

  // The refused run left the snapshot untouched and resumable.
  util::StatusOr<FrontierSnapshot> snap = ReadSnapshotFile(path);
  ASSERT_TRUE(snap.ok());
  EXPECT_TRUE(snap.value().complete);
  EXPECT_EQ(snap.value().MergedDigest().Value(), first.digest);
  std::remove(path.c_str());
}

/// Delivers the first `limit` bicliques, then fails every emission:
/// models a downstream sink (full disk, closed pipe) dying mid-run.
class FailAfterSink : public ResultSink {
 public:
  explicit FailAfterSink(uint64_t limit) : limit_(limit) {}

  void Emit(std::span<const VertexId>, std::span<const VertexId>) override {
    if (delivered_.fetch_add(1, std::memory_order_relaxed) >= limit_) {
      delivered_.fetch_sub(1, std::memory_order_relaxed);
      throw std::runtime_error("injected sink failure");
    }
  }

  uint64_t delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }

 private:
  uint64_t limit_;
  std::atomic<uint64_t> delivered_{0};
};

TEST(CheckpointResumeTest, SnapshotNeverCompletesUndeliveredTasks) {
  // The flush-before-commit barrier: a task may be recorded completed
  // only after its buffered results reached the downstream sink —
  // otherwise a snapshot could claim a task done while its bicliques sit
  // in a worker's volatile buffer, and a SIGKILL before the next flush
  // would lose them permanently (resume never re-runs completed tasks).
  // Pin it with a sink that dies mid-run: the completed-task digests in
  // the final snapshot must never count more bicliques than the sink
  // actually accepted.
  const BipartiteGraph graph = MediumGraph();
  const std::string ref_path = TempPath("barrier-ref.pmbf");
  const DurableRun reference =
      RunDurable(graph, Algorithm::kMbet, 4, ref_path);
  std::remove(ref_path.c_str());
  ASSERT_GT(reference.emitted, 2u);

  const std::string path = TempPath("barrier.pmbf");
  std::remove(path.c_str());
  Options options;
  options.algorithm = Algorithm::kMbet;
  options.threads = 4;
  options.checkpoint.path = path;
  options.checkpoint.every_s = 3600;
  FailAfterSink sink(reference.emitted / 2 + 1);
  RunResult run;
  ASSERT_TRUE(Enumerate(graph, options, &sink, &run).ok());
  EXPECT_EQ(run.termination, Termination::kInternal);

  util::StatusOr<FrontierSnapshot> snap = ReadSnapshotFile(path);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_FALSE(snap.value().complete);
  EXPECT_GT(snap.value().pending.size(), 0u);
  EXPECT_LE(snap.value().MergedDigest().count, sink.delivered());
  std::remove(path.c_str());
}

TEST(CheckpointResumeTest, ResumeRejectsDifferentGraphOrAlgorithm) {
  const std::string path = TempPath("mismatch.pmbf");
  RunDurable(MediumGraph(), Algorithm::kMbet, 1, path);

  {
    Options options;
    options.algorithm = Algorithm::kMbet;
    options.checkpoint.path = path;
    options.checkpoint.resume = true;
    CountSink sink;
    const util::Status status =
        Enumerate(gen::ErdosRenyi(24, 24, 0.4, 8), options, &sink, nullptr);
    EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
    EXPECT_EQ(sink.count(), 0u);
  }
  {
    Options options;
    options.algorithm = Algorithm::kImbea;
    options.checkpoint.path = path;
    options.checkpoint.resume = true;
    CountSink sink;
    const util::Status status =
        Enumerate(MediumGraph(), options, &sink, nullptr);
    EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  }
  std::remove(path.c_str());
}

TEST(CheckpointResumeTest, CheckpointStopYieldsTypedTermination) {
  // The worst-case graph cannot finish within any test budget, so the
  // pre-set stop token is guaranteed to fire first (the checkpointer
  // polls it every ~20ms).
  const std::string path = TempPath("stop.pmbf");
  std::remove(path.c_str());
  std::atomic<bool> stop{true};
  Options options;
  options.algorithm = Algorithm::kMbet;
  options.threads = 4;
  options.checkpoint.path = path;
  options.checkpoint.every_s = 3600;
  options.checkpoint.checkpoint_stop = &stop;
  CountSink sink;
  RunResult run;
  ASSERT_TRUE(Enumerate(WorstCaseGraph(), options, &sink, &run).ok());
  EXPECT_EQ(run.termination, Termination::kCheckpointed);
  EXPECT_GT(run.frontier_pending, 0u);

  // The final snapshot is on disk and resumable.
  util::StatusOr<FrontierSnapshot> snap = ReadSnapshotFile(path);
  ASSERT_TRUE(snap.ok());
  EXPECT_FALSE(snap.value().complete);
  EXPECT_GT(snap.value().pending.size(), 0u);
  std::remove(path.c_str());
}

TEST(CheckpointResumeTest, FourShardsMergeToSingleProcessDigest) {
  const BipartiteGraph graph = MediumGraph();
  const std::string ref_path = TempPath("shard-ref.pmbf");
  const DurableRun reference =
      RunDurable(graph, Algorithm::kMbet, 2, ref_path);
  std::remove(ref_path.c_str());

  std::vector<FrontierSnapshot> shards;
  uint64_t total_emitted = 0;
  for (uint32_t i = 0; i < 4; ++i) {
    const std::string path =
        TempPath("shard-" + std::to_string(i) + ".pmbf");
    std::remove(path.c_str());
    Options options;
    options.algorithm = Algorithm::kMbet;
    options.threads = 2;
    options.checkpoint.path = path;
    options.checkpoint.every_s = 3600;
    options.checkpoint.shard_index = i;
    options.checkpoint.shard_count = 4;
    CountSink sink;
    RunResult run;
    ASSERT_TRUE(Enumerate(graph, options, &sink, &run).ok());
    EXPECT_EQ(run.termination, Termination::kComplete);
    total_emitted += run.results_emitted;
    util::StatusOr<FrontierSnapshot> snap = ReadSnapshotFile(path);
    ASSERT_TRUE(snap.ok());
    shards.push_back(snap.value());
    std::remove(path.c_str());
  }

  util::StatusOr<FrontierSnapshot> merged = MergeSnapshots(shards);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged.value().MergedDigest().Value(), reference.digest);
  EXPECT_EQ(total_emitted, reference.emitted);
}

TEST(CheckpointOptionsTest, ValidateRejectsIncoherentCheckpointing) {
  {
    Options o;  // resume without a path
    o.checkpoint.resume = true;
    EXPECT_EQ(o.Validate().code(), util::StatusCode::kInvalidArgument);
  }
  {
    Options o;  // whole-graph algorithm cannot checkpoint
    o.algorithm = Algorithm::kMineLmbc;
    o.checkpoint.path = "x.pmbf";
    EXPECT_EQ(o.Validate().code(), util::StatusCode::kInvalidArgument);
  }
  {
    Options o;  // frontier needs the stealing scheduler
    o.checkpoint.path = "x.pmbf";
    o.scheduling = Scheduling::kDynamic;
    EXPECT_EQ(o.Validate().code(), util::StatusCode::kInvalidArgument);
  }
  {
    Options o;  // shard coordinates out of range
    o.checkpoint.path = "x.pmbf";
    o.checkpoint.shard_index = 4;
    o.checkpoint.shard_count = 4;
    EXPECT_EQ(o.Validate().code(), util::StatusCode::kInvalidArgument);
  }
  {
    Options o;  // sharding without a snapshot path
    o.checkpoint.shard_count = 4;
    EXPECT_EQ(o.Validate().code(), util::StatusCode::kInvalidArgument);
  }
  {
    Options o;  // negative snapshot cadence
    o.checkpoint.path = "x.pmbf";
    o.checkpoint.every_s = -1;
    EXPECT_EQ(o.Validate().code(), util::StatusCode::kInvalidArgument);
  }
  {
    Options o;  // 0 = final snapshot only — valid (matches the CLI's >= 0)
    o.checkpoint.path = "x.pmbf";
    o.checkpoint.every_s = 0;
    EXPECT_TRUE(o.Validate().ok());
  }
  {
    Options o;  // a coherent durable configuration passes
    o.checkpoint.path = "x.pmbf";
    o.checkpoint.shard_index = 1;
    o.checkpoint.shard_count = 4;
    o.threads = 4;
    EXPECT_TRUE(o.Validate().ok());
  }
}

}  // namespace
}  // namespace mbe
