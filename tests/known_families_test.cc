// Correctness on graph families with closed-form maximal-biclique counts.
// These go far beyond the brute-force oracle's reach (the crown family is
// exponential) and pin down exact combinatorial structure.

#include <gtest/gtest.h>

#include <vector>

#include "api/mbe.h"
#include "core/verify.h"

namespace mbe {
namespace {

uint64_t Count(const BipartiteGraph& graph, Algorithm algorithm) {
  Options options;
  options.algorithm = algorithm;
  if (algorithm == Algorithm::kOombeaLite) {
    options.order = VertexOrder::kUnilateralAsc;
  }
  return CountMaximalBicliques(graph, options);
}

const Algorithm kAll[] = {Algorithm::kMbet,  Algorithm::kMbetM,
                          Algorithm::kMbea,  Algorithm::kImbea,
                          Algorithm::kOombeaLite};

/// Crown graph: K_{n,n} minus a perfect matching (u_i ~ v_j iff i != j).
/// Every proper nonempty S ⊆ U is the left side of exactly one maximal
/// biclique (S, {v_j : u_j ∉ S}), giving 2^n − 2 of them.
BipartiteGraph Crown(size_t n) {
  std::vector<Edge> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) {
      if (u != v) edges.push_back({u, v});
    }
  }
  return BipartiteGraph::FromEdges(n, n, edges);
}

class CrownTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CrownTest, CountIsTwoToTheNMinusTwo) {
  const size_t n = GetParam();
  BipartiteGraph graph = Crown(n);
  const uint64_t expected = (1ull << n) - 2;
  for (Algorithm algorithm : kAll) {
    EXPECT_EQ(Count(graph, algorithm), expected)
        << AlgorithmName(algorithm) << " n=" << n;
  }
}

// MineLMBC recomputes C(L') per node and is hopeless beyond tiny crowns;
// run it only on the smallest sizes.
TEST(CrownTest, MineLmbcOnSmallCrowns) {
  for (size_t n : {2u, 3u, 4u, 6u}) {
    EXPECT_EQ(Count(Crown(n), Algorithm::kMineLmbc), (1ull << n) - 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CrownTest,
                         ::testing::Values(2, 3, 4, 6, 8, 10, 12, 14, 16));

/// Half graph: u_i ~ v_j iff i <= j. Maximal bicliques form a chain
/// ({u_0..u_i}, {v_i..v_{n-1}}) for each i — exactly n of them.
BipartiteGraph HalfGraph(size_t n) {
  std::vector<Edge> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u; v < n; ++v) edges.push_back({u, v});
  }
  return BipartiteGraph::FromEdges(n, n, edges);
}

class HalfGraphTest : public ::testing::TestWithParam<size_t> {};

TEST_P(HalfGraphTest, CountIsN) {
  const size_t n = GetParam();
  BipartiteGraph graph = HalfGraph(n);
  for (Algorithm algorithm : kAll) {
    EXPECT_EQ(Count(graph, algorithm), n) << AlgorithmName(algorithm);
  }
  // And the bicliques really are the chain.
  CollectSink sink;
  Enumerate(graph, Options(), &sink);
  for (const Biclique& b : sink.TakeSorted()) {
    ASSERT_FALSE(b.left.empty());
    const VertexId i = b.left.back();
    EXPECT_EQ(b.left.size(), static_cast<size_t>(i) + 1);
    EXPECT_EQ(b.right.size(), n - i);
    EXPECT_EQ(b.right.front(), i);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, HalfGraphTest,
                         ::testing::Values(1, 2, 5, 10, 40, 100));

/// Complete bipartite K_{a,b}: exactly one maximal biclique.
TEST(CompleteTest, SingleBiclique) {
  for (size_t a : {1u, 3u, 7u}) {
    for (size_t b : {1u, 4u, 9u}) {
      std::vector<Edge> edges;
      for (VertexId u = 0; u < a; ++u) {
        for (VertexId v = 0; v < b; ++v) edges.push_back({u, v});
      }
      BipartiteGraph graph = BipartiteGraph::FromEdges(a, b, edges);
      for (Algorithm algorithm : kAll) {
        EXPECT_EQ(Count(graph, algorithm), 1u)
            << AlgorithmName(algorithm) << " K_" << a << "," << b;
      }
    }
  }
}

/// Disjoint union of complete blocks: one maximal biclique per block,
/// independent of block sizes.
TEST(BlockDiagonalTest, OneBicliquePerBlock) {
  const size_t blocks = 12, a = 3, b = 4;
  std::vector<Edge> edges;
  for (size_t k = 0; k < blocks; ++k) {
    for (VertexId u = 0; u < a; ++u) {
      for (VertexId v = 0; v < b; ++v) {
        edges.push_back({static_cast<VertexId>(k * a + u),
                         static_cast<VertexId>(k * b + v)});
      }
    }
  }
  BipartiteGraph graph = BipartiteGraph::FromEdges(blocks * a, blocks * b, edges);
  for (Algorithm algorithm : kAll) {
    EXPECT_EQ(Count(graph, algorithm), blocks) << AlgorithmName(algorithm);
  }
}

/// K_{n,n} minus one edge (u0, v0): the maximal bicliques are
/// (U \ {u0}, V), (U, V \ {v0}), — and nothing else.
TEST(AlmostCompleteTest, MinusOneEdgeGivesTwo) {
  const size_t n = 8;
  std::vector<Edge> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) {
      if (!(u == 0 && v == 0)) edges.push_back({u, v});
    }
  }
  BipartiteGraph graph = BipartiteGraph::FromEdges(n, n, edges);
  CollectSink sink;
  Enumerate(graph, Options(), &sink);
  const auto results = sink.TakeSorted();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].left.size() + results[0].right.size(), 2 * n - 1);
  EXPECT_EQ(results[1].left.size() + results[1].right.size(), 2 * n - 1);
}

/// Crown counts also hold under every ablation configuration (exponential
/// stress of the prefix-tree machinery specifically).
TEST(CrownTest, AblationsSurviveExponentialFamily) {
  BipartiteGraph graph = Crown(12);
  const uint64_t expected = (1ull << 12) - 2;
  for (bool trie : {false, true}) {
    for (bool agg : {false, true}) {
      Options options;
      options.mbet.use_trie = trie;
      options.mbet.use_aggregation = agg;
      EXPECT_EQ(CountMaximalBicliques(graph, options), expected)
          << "trie=" << trie << " agg=" << agg;
    }
  }
}

/// Size filters on the crown have closed form too: bicliques with
/// |L| >= p and |R| >= q correspond to S with p <= |S| <= n - q, so the
/// count is sum of binomials.
TEST(CrownTest, SizeFiltersHaveClosedForm) {
  const size_t n = 10;
  BipartiteGraph graph = Crown(n);
  auto binom = [](uint64_t n_, uint64_t k_) {
    uint64_t r = 1;
    for (uint64_t i = 1; i <= k_; ++i) r = r * (n_ - k_ + i) / i;
    return r;
  };
  for (uint32_t p : {1u, 2u, 4u}) {
    for (uint32_t q : {1u, 3u}) {
      uint64_t expected = 0;
      for (uint64_t s = std::max<uint64_t>(p, 1); s + q <= n; ++s) {
        expected += binom(n, s);
      }
      Options options;
      options.mbet.min_left = p;
      options.mbet.min_right = q;
      EXPECT_EQ(CountMaximalBicliques(graph, options), expected)
          << "p=" << p << " q=" << q;
    }
  }
}

}  // namespace
}  // namespace mbe
