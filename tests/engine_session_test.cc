// Engine/Session API tests (api/engine.h, api/session.h) and the shared
// SessionPool (serve/session_pool.h): facade equivalence, run-once
// semantics, cancellation, per-session memory-budget isolation, and
// multi-session digest identity on a shared pool.

#include <gtest/gtest.h>

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "api/mbe.h"
#include "core/run_control.h"
#include "core/sink.h"
#include "gen/generators.h"
#include "serve/session_pool.h"

namespace mbe {
namespace {

std::shared_ptr<const Engine> BuildEngine(const BipartiteGraph& graph,
                                          const GraphOptions& options = {}) {
  auto engine = Engine::Build(graph, options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

/// Digest of one complete standalone run over `engine`.
uint64_t SoloDigest(const std::shared_ptr<const Engine>& engine,
                    const RunOptions& options, uint64_t* count = nullptr) {
  FingerprintSink sink;
  Session session(engine, options);
  RunResult result;
  EXPECT_TRUE(session.Run(&sink, &result).ok());
  EXPECT_TRUE(result.complete());
  if (count != nullptr) *count = sink.count();
  return sink.Digest();
}

/// Blocks until `n` done callbacks fired.
class Latch {
 public:
  explicit Latch(int n) : remaining_(n) {}
  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--remaining_ == 0) cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return remaining_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int remaining_;
};

TEST(EngineSessionTest, MatchesFacadeForEveryAlgorithm) {
  const BipartiteGraph graph = gen::PowerLaw(30, 50, 250, 0.8, 0.8, 61);
  for (Algorithm algorithm :
       {Algorithm::kMbet, Algorithm::kMbetM, Algorithm::kMineLmbc,
        Algorithm::kMbea, Algorithm::kImbea, Algorithm::kOombeaLite}) {
    SCOPED_TRACE(AlgorithmName(algorithm));
    Options flat;
    flat.algorithm = algorithm;

    FingerprintSink facade_sink;
    RunResult facade_result;
    ASSERT_TRUE(Enumerate(graph, flat, &facade_sink, &facade_result).ok());
    ASSERT_TRUE(facade_result.complete());

    auto engine = BuildEngine(graph, flat.graph_options());
    FingerprintSink session_sink;
    Session session(engine, flat.run_options());
    RunResult session_result;
    ASSERT_TRUE(session.Run(&session_sink, &session_result).ok());
    EXPECT_TRUE(session_result.complete());
    EXPECT_EQ(session_sink.Digest(), facade_sink.Digest());
    EXPECT_EQ(session_sink.count(), facade_sink.count());
    EXPECT_EQ(session_result.stats.maximal, facade_result.stats.maximal);
  }
}

TEST(EngineSessionTest, EngineIsReusableAcrossSessions) {
  auto engine = BuildEngine(gen::ErdosRenyi(20, 20, 0.3, 5));
  const uint64_t first = SoloDigest(engine, RunOptions{});
  const uint64_t second = SoloDigest(engine, RunOptions{});
  EXPECT_EQ(first, second);
}

TEST(EngineSessionTest, SessionRunsOnlyOnce) {
  auto engine = BuildEngine(gen::ErdosRenyi(10, 10, 0.3, 5));
  Session session(engine, RunOptions{});
  FingerprintSink sink;
  ASSERT_TRUE(session.Run(&sink).ok());
  EXPECT_FALSE(session.Run(&sink).ok());
}

TEST(EngineSessionTest, NullSinkRejected) {
  auto engine = BuildEngine(gen::ErdosRenyi(5, 5, 0.5, 1));
  Session session(engine, RunOptions{});
  EXPECT_EQ(session.Run(nullptr).code(), util::StatusCode::kInvalidArgument);
}

TEST(EngineSessionTest, CancelBeforeRunStopsImmediately) {
  auto engine = BuildEngine(gen::PowerLaw(30, 50, 250, 0.8, 0.8, 61));
  Session session(engine, RunOptions{});
  session.Cancel();
  FingerprintSink sink;
  RunResult result;
  ASSERT_TRUE(session.Run(&sink, &result).ok());
  EXPECT_EQ(result.termination, Termination::kCancelled);
}

TEST(EngineSessionTest, QueryLooserThanBakedReductionRejected) {
  GraphOptions baked;
  baked.min_left = 2;
  baked.min_right = 2;
  auto engine = BuildEngine(gen::PowerLaw(30, 50, 250, 0.8, 0.8, 61), baked);
  ASSERT_EQ(engine->reduced_min_left(), 2u);
  ASSERT_EQ(engine->reduced_min_right(), 2u);

  RunOptions loose;  // min 1/1 would need bicliques the reduction removed
  Session session(engine, loose);
  FingerprintSink sink;
  EXPECT_EQ(session.Run(&sink).code(), util::StatusCode::kInvalidArgument);

  // An exactly-as-strict query runs and matches an unreduced engine
  // filtered to the same thresholds.
  RunOptions strict;
  strict.mbet.min_left = 2;
  strict.mbet.min_right = 2;
  const uint64_t reduced_digest = SoloDigest(engine, strict);
  auto unreduced =
      BuildEngine(gen::PowerLaw(30, 50, 250, 0.8, 0.8, 61), GraphOptions{});
  EXPECT_EQ(reduced_digest, SoloDigest(unreduced, strict));
}

TEST(EngineSessionTest, SessionIdTagsResult) {
  auto engine = BuildEngine(gen::ErdosRenyi(10, 10, 0.3, 5));
  Session session(engine, RunOptions{}, 42);
  FingerprintSink sink;
  RunResult result;
  ASSERT_TRUE(session.Run(&sink, &result).ok());
  EXPECT_EQ(result.session_id, 42u);
}

// The per-session budget satellite: one tenant exhausting its cap stops
// (and degrades) only its own run; a concurrent neighbor over the same
// engine completes bit-identically to a solo run.
TEST(EngineSessionTest, BudgetExhaustionIsContainedToOneSession) {
  const BipartiteGraph graph = gen::PowerLaw(60, 90, 700, 0.8, 0.8, 17);
  auto engine = BuildEngine(graph);
  uint64_t want_count = 0;
  const uint64_t want_digest = SoloDigest(engine, RunOptions{}, &want_count);
  ASSERT_GT(want_count, 0u);

  RunOptions capped;
  capped.max_memory_bytes = 1 << 12;  // 4 KiB: certain to be exceeded
  Session victim(engine, capped, 1);
  Session neighbor(engine, RunOptions{}, 2);

  FingerprintSink victim_sink, neighbor_sink;
  RunResult victim_result, neighbor_result;
  util::Status victim_status, neighbor_status;
  std::thread victim_thread([&] {
    victim_status = victim.Run(&victim_sink, &victim_result);
  });
  std::thread neighbor_thread([&] {
    neighbor_status = neighbor.Run(&neighbor_sink, &neighbor_result);
  });
  victim_thread.join();
  neighbor_thread.join();

  ASSERT_TRUE(victim_status.ok()) << victim_status.ToString();
  ASSERT_TRUE(neighbor_status.ok()) << neighbor_status.ToString();
  EXPECT_EQ(victim_result.termination, Termination::kMemoryLimit);
  EXPECT_LE(victim_result.stats.peak_charged_bytes, capped.max_memory_bytes);
  // The neighbor never saw the victim's exhaustion: complete, untouched
  // by degradation pressure, and bit-identical to the solo run.
  EXPECT_EQ(neighbor_result.termination, Termination::kComplete);
  EXPECT_EQ(neighbor_result.stats.degradations, 0u);
  EXPECT_EQ(neighbor_sink.Digest(), want_digest);
  EXPECT_EQ(neighbor_sink.count(), want_count);
}

// --- SessionPool ---------------------------------------------------------

TEST(SessionPoolTest, ManyConcurrentSessionsDigestIdentity) {
  const BipartiteGraph graph = gen::PowerLaw(40, 60, 400, 0.8, 0.8, 7);
  auto engine = BuildEngine(graph);
  const Algorithm algorithms[] = {Algorithm::kMbet, Algorithm::kImbea,
                                  Algorithm::kMineLmbc};
  uint64_t want_digest[3] = {};
  uint64_t want_count[3] = {};
  for (int a = 0; a < 3; ++a) {
    RunOptions options;
    options.algorithm = algorithms[a];
    want_digest[a] = SoloDigest(engine, options, &want_count[a]);
  }

  constexpr int kSessions = 9;
  serve::SessionPool pool(3);
  std::vector<std::shared_ptr<Session>> sessions;
  std::vector<std::unique_ptr<FingerprintSink>> sinks;
  std::vector<RunResult> results(kSessions);
  Latch latch(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    RunOptions options;
    options.algorithm = algorithms[i % 3];
    sessions.push_back(std::make_shared<Session>(engine, options, i + 1));
    sinks.push_back(std::make_unique<FingerprintSink>());
    ASSERT_TRUE(sessions[i]->Prepare(sinks[i].get()).ok());
  }
  for (int i = 0; i < kSessions; ++i) {
    pool.Submit(sessions[i], [&results, &latch, i](const RunResult& r) {
      results[i] = r;
      latch.CountDown();
    });
  }
  latch.Wait();
  pool.Shutdown();

  for (int i = 0; i < kSessions; ++i) {
    SCOPED_TRACE(AlgorithmName(algorithms[i % 3]));
    EXPECT_EQ(results[i].termination, Termination::kComplete);
    EXPECT_EQ(results[i].session_id, static_cast<uint64_t>(i + 1));
    EXPECT_EQ(sinks[i]->Digest(), want_digest[i % 3]);
    EXPECT_EQ(sinks[i]->count(), want_count[i % 3]);
    EXPECT_EQ(results[i].results_emitted, want_count[i % 3]);
  }
}

TEST(SessionPoolTest, CancelStopsOnlyTheTargetedSession) {
  const BipartiteGraph graph = gen::PowerLaw(40, 60, 400, 0.8, 0.8, 7);
  auto engine = BuildEngine(graph);
  uint64_t want_count = 0;
  const uint64_t want_digest = SoloDigest(engine, RunOptions{}, &want_count);

  serve::SessionPool pool(2);
  auto cancelled = std::make_shared<Session>(engine, RunOptions{}, 1);
  auto survivor = std::make_shared<Session>(engine, RunOptions{}, 2);
  FingerprintSink cancelled_sink, survivor_sink;
  ASSERT_TRUE(cancelled->Prepare(&cancelled_sink).ok());
  ASSERT_TRUE(survivor->Prepare(&survivor_sink).ok());
  // Cancel lands before the pool runs any task: deterministic outcome.
  cancelled->Cancel();

  RunResult cancelled_result, survivor_result;
  Latch latch(2);
  pool.Submit(cancelled, [&](const RunResult& r) {
    cancelled_result = r;
    latch.CountDown();
  });
  pool.Submit(survivor, [&](const RunResult& r) {
    survivor_result = r;
    latch.CountDown();
  });
  latch.Wait();
  pool.Shutdown();

  EXPECT_EQ(cancelled_result.termination, Termination::kCancelled);
  EXPECT_EQ(survivor_result.termination, Termination::kComplete);
  EXPECT_EQ(survivor_sink.Digest(), want_digest);
  EXPECT_EQ(survivor_sink.count(), want_count);
}

TEST(SessionPoolTest, PerSessionBudgetContainmentOnSharedWorkers) {
  // The serve-side variant of BudgetExhaustionIsContainedToOneSession:
  // both sessions' tasks interleave on the same pool threads, so this
  // additionally proves the thread-local budget binding switches
  // correctly between tasks of different tenants.
  const BipartiteGraph graph = gen::PowerLaw(60, 90, 700, 0.8, 0.8, 17);
  auto engine = BuildEngine(graph);
  uint64_t want_count = 0;
  const uint64_t want_digest = SoloDigest(engine, RunOptions{}, &want_count);

  RunOptions capped;
  capped.max_memory_bytes = 1 << 12;
  serve::SessionPool pool(2);
  auto victim = std::make_shared<Session>(engine, capped, 1);
  auto neighbor = std::make_shared<Session>(engine, RunOptions{}, 2);
  FingerprintSink victim_sink, neighbor_sink;
  ASSERT_TRUE(victim->Prepare(&victim_sink).ok());
  ASSERT_TRUE(neighbor->Prepare(&neighbor_sink).ok());

  RunResult victim_result, neighbor_result;
  Latch latch(2);
  pool.Submit(victim, [&](const RunResult& r) {
    victim_result = r;
    latch.CountDown();
  });
  pool.Submit(neighbor, [&](const RunResult& r) {
    neighbor_result = r;
    latch.CountDown();
  });
  latch.Wait();
  pool.Shutdown();

  EXPECT_EQ(victim_result.termination, Termination::kMemoryLimit);
  EXPECT_LE(victim_result.stats.peak_charged_bytes, capped.max_memory_bytes);
  EXPECT_EQ(neighbor_result.termination, Termination::kComplete);
  EXPECT_EQ(neighbor_result.stats.degradations, 0u);
  EXPECT_EQ(neighbor_sink.Digest(), want_digest);
  EXPECT_EQ(neighbor_sink.count(), want_count);
}

TEST(SessionPoolTest, SubmitAfterShutdownCancelsInline) {
  auto engine = BuildEngine(gen::ErdosRenyi(10, 10, 0.3, 5));
  serve::SessionPool pool(1);
  pool.Shutdown();
  auto session = std::make_shared<Session>(engine, RunOptions{}, 1);
  FingerprintSink sink;
  ASSERT_TRUE(session->Prepare(&sink).ok());
  bool done = false;
  RunResult result;
  pool.Submit(session, [&](const RunResult& r) {
    result = r;
    done = true;
  });
  EXPECT_TRUE(done);
  EXPECT_EQ(result.termination, Termination::kCancelled);
}

}  // namespace
}  // namespace mbe
