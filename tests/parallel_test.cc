// Unit tests for the thread pool and the parallel enumeration driver.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#include "api/mbe.h"
#include "core/mbet.h"
#include "gen/generators.h"
#include "parallel/parallel_mbe.h"
#include "parallel/thread_pool.h"

namespace mbe {
namespace {

class ThreadPoolTest
    : public ::testing::TestWithParam<std::tuple<unsigned, Scheduling>> {};

TEST_P(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  const auto [threads, scheduling] = GetParam();
  ThreadPool pool(threads);
  constexpr uint64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, scheduling, [&](uint64_t i, unsigned worker) {
    ASSERT_LT(worker, pool.threads());
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (uint64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ThreadPoolTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 7u),
                       ::testing::Values(Scheduling::kDynamic,
                                         Scheduling::kStatic,
                                         // Degrades to kDynamic for index
                                         // loops (see thread_pool.h).
                                         Scheduling::kStealing)));

TEST(ThreadPoolBasicTest, ZeroIterationsIsNoop) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(0, Scheduling::kDynamic,
                   [&](uint64_t, unsigned) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolBasicTest, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.threads(), 1u);
}

TEST(ThreadPoolBasicTest, MoreThreadsThanWork) {
  ThreadPool pool(16);
  std::atomic<int> count{0};
  pool.ParallelFor(3, Scheduling::kDynamic,
                   [&](uint64_t, unsigned) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolBasicTest, StaticBlocksAreContiguousPerWorker) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::vector<uint64_t>> by_worker(3);
  pool.ParallelFor(30, Scheduling::kStatic, [&](uint64_t i, unsigned w) {
    std::lock_guard<std::mutex> lock(mu);
    by_worker[w].push_back(i);
  });
  for (const auto& indices : by_worker) {
    for (size_t k = 1; k < indices.size(); ++k) {
      EXPECT_EQ(indices[k], indices[k - 1] + 1) << "non-contiguous block";
    }
  }
}

// --- ParallelEnumerate --------------------------------------------------------

class CountingWorker : public SubtreeWorker {
 public:
  explicit CountingWorker(const BipartiteGraph& graph,
                          std::atomic<int>* created = nullptr)
      : engine_(graph, MbetOptions{}) {
    if (created != nullptr) created->fetch_add(1);
  }
  void EnumerateSubtree(VertexId v, ResultSink* sink) override {
    engine_.EnumerateSubtree(v, sink);
  }
  EnumStats stats() const override { return engine_.stats(); }

 private:
  MbetEnumerator engine_;
};

TEST(ParallelEnumerateTest, MergesStatsAcrossWorkers) {
  BipartiteGraph graph = gen::PowerLaw(150, 100, 800, 0.8, 0.8, 44);

  // Serial reference.
  CountSink serial_sink;
  MbetEnumerator serial(graph, MbetOptions{});
  serial.EnumerateAll(&serial_sink);

  std::atomic<int> created{0};
  ParallelOptions options;
  options.threads = 4;
  CountSink parallel_sink;
  EnumStats merged = ParallelEnumerate(
      graph,
      [&graph, &created]() {
        return std::make_unique<CountingWorker>(graph, &created);
      },
      options, &parallel_sink);

  EXPECT_EQ(parallel_sink.count(), serial_sink.count());
  EXPECT_EQ(merged.maximal, serial.stats().maximal);
  EXPECT_EQ(merged.nodes_expanded, serial.stats().nodes_expanded);
  EXPECT_EQ(merged.non_maximal, serial.stats().non_maximal);
  EXPECT_GE(created.load(), 1);
  EXPECT_LE(created.load(), 4);
}

TEST(ParallelEnumerateTest, EmptyGraph) {
  BipartiteGraph graph;
  ParallelOptions options;
  options.threads = 4;
  CountSink sink;
  EnumStats stats = ParallelEnumerate(
      graph,
      [&graph]() {
        return std::make_unique<CountingWorker>(graph);
      },
      options, &sink);
  EXPECT_EQ(sink.count(), 0u);
  EXPECT_EQ(stats.maximal, 0u);
}

// Split-capable worker: forwards the full SubtreeWorker surface to an
// MbetEnumerator (mirrors the api-layer adapter).
class SplittingWorker : public SubtreeWorker {
 public:
  explicit SplittingWorker(const BipartiteGraph& graph)
      : engine_(graph, MbetOptions{}) {}
  void EnumerateSubtree(VertexId v, ResultSink* sink) override {
    engine_.EnumerateSubtree(v, sink);
  }
  uint32_t SplitHint(VertexId v, uint32_t max_shards,
                     uint64_t min_work) override {
    return engine_.SplitHint(v, max_shards, min_work);
  }
  void EnumerateShard(VertexId v, uint32_t shard, uint32_t num_shards,
                      ResultSink* sink) override {
    engine_.EnumerateShard(v, shard, num_shards, sink);
  }
  EnumStats stats() const override { return engine_.stats(); }

 private:
  MbetEnumerator engine_;
};

TEST(WorkStealingDriverTest, SplitsHeavySubtreeAndMatchesSerial) {
  // Hub graph: subtree(0) holds nearly all work, plus a light tail.
  BipartiteGraph graph = gen::HubBlock(/*block_left=*/60, /*block_right=*/40,
                                       /*tail_left=*/60, /*tail_right=*/120,
                                       /*p_in=*/0.4, /*p_tail=*/0.02, 7);
  CountSink serial_sink;
  MbetEnumerator serial(graph, MbetOptions{});
  serial.EnumerateAll(&serial_sink);
  ASSERT_GT(serial_sink.count(), 100u);

  ParallelOptions options;
  options.threads = 8;
  options.scheduling = Scheduling::kStealing;
  options.split_min_work = 64;  // low bar so the hub subtree surely splits
  CountSink sink;
  EnumStats merged = ParallelEnumerate(
      graph,
      [&graph]() { return std::make_unique<SplittingWorker>(graph); },
      options, &sink);

  EXPECT_EQ(sink.count(), serial_sink.count());
  EXPECT_EQ(merged.maximal, serial.stats().maximal);
  EXPECT_GT(merged.split_tasks, 0u) << "hub subtree was never split";
  EXPECT_GT(merged.sink_flushes, 0u);
  EXPECT_GT(merged.busy_ns, 0u);
}

TEST(WorkStealingDriverTest, SplitDisabledStillMatchesSerial) {
  BipartiteGraph graph = gen::HubBlock(40, 30, 40, 60, 0.4, 0.03, 8);
  CountSink serial_sink;
  MbetEnumerator serial(graph, MbetOptions{});
  serial.EnumerateAll(&serial_sink);

  ParallelOptions options;
  options.threads = 4;
  options.scheduling = Scheduling::kStealing;
  options.max_split = 1;  // stealing without splitting
  CountSink sink;
  EnumStats merged = ParallelEnumerate(
      graph,
      [&graph]() { return std::make_unique<SplittingWorker>(graph); },
      options, &sink);
  EXPECT_EQ(sink.count(), serial_sink.count());
  EXPECT_EQ(merged.split_tasks, 0u);
}

TEST(WorkStealingDriverTest, DefaultWorkerWithoutSplitSupport) {
  // CountingWorker inherits the SplitHint=1 default: the scheduler must
  // run every subtree whole and still match the serial result.
  BipartiteGraph graph = gen::PowerLaw(150, 100, 900, 0.85, 0.8, 46);
  CountSink serial_sink;
  MbetEnumerator serial(graph, MbetOptions{});
  serial.EnumerateAll(&serial_sink);

  ParallelOptions options;
  options.threads = 8;
  options.scheduling = Scheduling::kStealing;
  options.split_min_work = 1;  // an eager bar, but the worker can't split
  CountSink sink;
  EnumStats merged = ParallelEnumerate(
      graph, [&graph]() { return std::make_unique<CountingWorker>(graph); },
      options, &sink);
  EXPECT_EQ(sink.count(), serial_sink.count());
  EXPECT_EQ(merged.split_tasks, 0u);
  EXPECT_EQ(merged.nodes_expanded, serial.stats().nodes_expanded);
}

TEST(WorkStealingDriverTest, SingleThreadStealingMatchesSerial) {
  BipartiteGraph graph = gen::HubBlock(30, 25, 20, 40, 0.4, 0.05, 9);
  CountSink serial_sink;
  MbetEnumerator serial(graph, MbetOptions{});
  serial.EnumerateAll(&serial_sink);

  ParallelOptions options;
  options.threads = 1;
  options.scheduling = Scheduling::kStealing;
  options.split_min_work = 32;
  CountSink sink;
  EnumStats merged = ParallelEnumerate(
      graph,
      [&graph]() { return std::make_unique<SplittingWorker>(graph); },
      options, &sink);
  EXPECT_EQ(sink.count(), serial_sink.count());
  EXPECT_EQ(merged.steals, 0u) << "one worker has nobody to steal from";
}

TEST(ParallelEnumerateTest, StopRequestHaltsWorkers) {
  BipartiteGraph graph = gen::PowerLaw(300, 200, 2000, 0.85, 0.8, 45);
  CountSink inner;
  BudgetSink budget(&inner, /*max_results=*/100, /*deadline_seconds=*/0);
  ParallelOptions options;
  options.threads = 4;
  ParallelEnumerate(
      graph,
      [&graph]() {
        return std::make_unique<CountingWorker>(graph);
      },
      options, &budget);
  // Workers poll ShouldStop between nodes; some overshoot is expected but
  // the run must terminate far short of the full result set.
  const uint64_t full = CountMaximalBicliques(graph, Options());
  EXPECT_GE(budget.emitted(), 100u);
  EXPECT_LT(budget.emitted(), full);
}

}  // namespace
}  // namespace mbe
