// Robustness tests (docs/ROBUSTNESS.md): hard memory budgets with graceful
// degradation, sink-failure containment, the worker watchdog, run-control ×
// budget interactions, and — in fault builds (-DPMBE_FAULT_INJECTION=ON) —
// deterministic fault-injection sweeps over every registered fault point.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "api/mbe.h"
#include "core/verify.h"
#include "gen/generators.h"
#include "graph/graph_io.h"
#include "util/fault.h"
#include "util/memory.h"

namespace mbe {
namespace {

BipartiteGraph MediumGraph() { return gen::ErdosRenyi(24, 24, 0.4, 7); }

// Dense enough that full enumeration is far beyond any test budget —
// exactly the situation memory caps and deadlines exist for.
BipartiteGraph WorstCaseGraph() { return gen::ErdosRenyi(60, 60, 0.5, 11); }

// Used by the fault-build sweeps only; regular builds compile it out of use.
[[maybe_unused]] std::vector<Biclique> ReferenceSet(const BipartiteGraph& graph) {
  CollectSink sink;
  Enumerate(graph, Options(), &sink);
  return sink.TakeSorted();
}

uint64_t ReferenceDigest(const BipartiteGraph& graph) {
  FingerprintSink sink;
  Enumerate(graph, Options(), &sink);
  return sink.Digest();
}

// Interruption contract: everything emitted must be a genuine maximal
// biclique of the input — a valid prefix, never partial garbage.
void ExpectAllMaximal(const BipartiteGraph& graph, CollectSink& sink) {
  for (const Biclique& b : sink.TakeSorted()) {
    EXPECT_TRUE(IsMaximalBiclique(graph, b)) << ToString(b);
  }
}

// A consumer that fails: throws once the Nth biclique arrives. Emissions
// before the throw are delivered normally.
class ThrowAfterSink : public ResultSink {
 public:
  explicit ThrowAfterSink(uint64_t fail_at) : fail_at_(fail_at) {}

  void Emit(std::span<const VertexId> left,
            std::span<const VertexId> right) override {
    const uint64_t n = seen_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n >= fail_at_) throw std::runtime_error("consumer failed");
    collected_.Emit(left, right);
  }

  uint64_t delivered() const { return collected_.results().size(); }
  CollectSink& collected() { return collected_; }

 private:
  uint64_t fail_at_;
  std::atomic<uint64_t> seen_{0};
  CollectSink collected_;
};

// --- MemoryBudget unit tests (local instance; the global one is shared) ---

TEST(MemoryBudgetTest, ChargeReleaseAndPeakStayUnderCap) {
  util::MemoryBudget budget;
  budget.BeginRun(1000);
  EXPECT_TRUE(budget.TryCharge(600));
  EXPECT_EQ(budget.charged(), 600u);
  EXPECT_EQ(budget.peak(), 600u);

  // A declined charge is rolled back and latches exhaustion; the peak
  // provably never exceeds the cap.
  EXPECT_FALSE(budget.TryCharge(500));
  EXPECT_EQ(budget.charged(), 600u);
  EXPECT_LE(budget.peak(), 1000u);
  EXPECT_TRUE(budget.exhausted());

  budget.Release(600);
  EXPECT_EQ(budget.charged(), 0u);
  budget.EndRun();
}

TEST(MemoryBudgetTest, SoftFractionTurnsOnPressure) {
  util::MemoryBudget budget;
  budget.BeginRun(1000);
  ASSERT_TRUE(budget.TryCharge(700));  // below 75%
  EXPECT_FALSE(budget.UnderPressure());
  ASSERT_TRUE(budget.TryCharge(100));  // 800 >= 750
  EXPECT_TRUE(budget.UnderPressure());
  EXPECT_FALSE(budget.exhausted());

  const uint64_t before = budget.degradations();
  budget.NoteDegradation();
  EXPECT_EQ(budget.degradations(), before + 1);
  budget.Release(800);
  budget.EndRun();
}

TEST(MemoryBudgetTest, NoCapNeverDeclinesOrPressures) {
  util::MemoryBudget budget;
  budget.BeginRun(0);
  EXPECT_TRUE(budget.TryCharge(uint64_t{1} << 40));
  EXPECT_FALSE(budget.UnderPressure());
  EXPECT_FALSE(budget.exhausted());
  EXPECT_EQ(budget.peak(), uint64_t{1} << 40);
  budget.Release(uint64_t{1} << 40);
}

TEST(MemoryBudgetTest, BeginRunClearsExhaustionLatch) {
  util::MemoryBudget budget;
  budget.BeginRun(10);
  budget.ForceExhaust();
  EXPECT_TRUE(budget.exhausted());
  budget.BeginRun(10);
  EXPECT_FALSE(budget.exhausted());
  budget.EndRun();
}

// --- Hard cap end-to-end -------------------------------------------------

class MemoryLimitTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(MemoryLimitTest, TinyCapStopsWithValidPrefixUnderCap) {
  const BipartiteGraph graph = WorstCaseGraph();
  Options options;
  options.threads = GetParam();
  options.max_memory_bytes = 1 << 12;  // 4 KiB: certain to be exceeded
  CollectSink sink;
  RunResult run;
  ASSERT_TRUE(Enumerate(graph, options, &sink, &run).ok());
  EXPECT_EQ(run.termination, Termination::kMemoryLimit)
      << TerminationName(run.termination);
  EXPECT_LE(run.stats.peak_charged_bytes, options.max_memory_bytes);
  ExpectAllMaximal(graph, sink);
}

INSTANTIATE_TEST_SUITE_P(Threads, MemoryLimitTest,
                         ::testing::Values(1u, 2u, 8u));

TEST(MemoryLimitTest, NoCapAccountingChangesNoResults) {
  const BipartiteGraph graph = MediumGraph();
  const uint64_t reference = ReferenceDigest(graph);

  // A cap far above the working set: the controller and the accounting run
  // (peak is reported) but no pressure, no degradation, no stop.
  Options options;
  options.max_memory_bytes = uint64_t{1} << 40;
  FingerprintSink sink;
  RunResult run;
  ASSERT_TRUE(Enumerate(graph, options, &sink, &run).ok());
  EXPECT_EQ(run.termination, Termination::kComplete);
  EXPECT_EQ(sink.Digest(), reference);
  EXPECT_GT(run.stats.peak_charged_bytes, 0u);
  EXPECT_EQ(run.stats.degradations, 0u);
}

TEST(MemoryLimitTest, CapSweepIsCompleteOrValidPrefix) {
  const BipartiteGraph graph = MediumGraph();
  const uint64_t reference = ReferenceDigest(graph);
  // Caps from starving to comfortable: each run must either finish with
  // identical results (degraded or not) or stop at the cap with a valid
  // prefix — never crash, never return garbage.
  for (uint64_t cap : {uint64_t{1} << 12, uint64_t{1} << 16, uint64_t{1} << 20,
                       uint64_t{1} << 30}) {
    Options options;
    options.max_memory_bytes = cap;
    CollectSink sink;
    RunResult run;
    ASSERT_TRUE(Enumerate(graph, options, &sink, &run).ok()) << cap;
    EXPECT_LE(run.stats.peak_charged_bytes, cap);
    if (run.termination == Termination::kComplete) {
      FingerprintSink digest;
      for (const Biclique& b : sink.TakeSorted()) {
        digest.Emit(b.left, b.right);
      }
      EXPECT_EQ(digest.Digest(), reference) << "cap=" << cap;
    } else {
      EXPECT_EQ(run.termination, Termination::kMemoryLimit) << cap;
      ExpectAllMaximal(graph, sink);
    }
  }
}

// --- Sink-failure containment ---------------------------------------------

TEST(ContainmentTest, ThrowingSinkWithoutControllerIsInternalStatus) {
  ThrowAfterSink sink(4);
  RunResult run;
  const util::Status status = Enumerate(MediumGraph(), Options(), &sink, &run);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInternal);
}

TEST(ContainmentTest, ThrowingSinkWithControllerIsInternalTermination) {
  const BipartiteGraph graph = MediumGraph();
  Options options;
  options.control.deadline_seconds = 3600;  // activates the controller
  ThrowAfterSink sink(4);
  RunResult run;
  ASSERT_TRUE(Enumerate(graph, options, &sink, &run).ok());
  EXPECT_EQ(run.termination, Termination::kInternal);
  EXPECT_FALSE(run.message.empty());
  EXPECT_EQ(sink.delivered(), 3u);
  ExpectAllMaximal(graph, sink.collected());
}

class ParallelContainmentTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelContainmentTest, ThrowingSharedSinkDrainsCleanly) {
  const BipartiteGraph graph = MediumGraph();
  Options options;
  options.threads = GetParam();
  options.control.deadline_seconds = 3600;
  ThrowAfterSink sink(6);
  RunResult run;
  // The worker whose flush hits the throwing consumer quarantines its
  // buffered batch; the others drain; the run ends typed, not hung.
  ASSERT_TRUE(Enumerate(graph, options, &sink, &run).ok());
  EXPECT_EQ(run.termination, Termination::kInternal);
  EXPECT_FALSE(run.message.empty());
  ExpectAllMaximal(graph, sink.collected());
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelContainmentTest,
                         ::testing::Values(2u, 8u));

// --- Watchdog -------------------------------------------------------------

TEST(WatchdogTest, HealthyParallelRunIsUnaffected) {
  const BipartiteGraph graph = MediumGraph();
  const uint64_t reference = ReferenceDigest(graph);
  Options options;
  options.threads = 4;
  options.watchdog_stall_seconds = 30;
  FingerprintSink sink;
  RunResult run;
  ASSERT_TRUE(Enumerate(graph, options, &sink, &run).ok());
  EXPECT_EQ(run.termination, Termination::kComplete);
  EXPECT_EQ(sink.Digest(), reference);
}

TEST(WatchdogTest, MonitorSweepsDuringALongRun) {
  Options options;
  options.threads = 2;
  options.control.deadline_seconds = 0.3;
  options.watchdog_stall_seconds = 30;  // sweeps every 100ms
  CountSink sink;
  RunResult run;
  ASSERT_TRUE(Enumerate(WorstCaseGraph(), options, &sink, &run).ok());
  EXPECT_EQ(run.termination, Termination::kDeadline);
  EXPECT_GE(run.stats.watchdog_checks, 1u);
}

// --- Run control × memory pressure ---------------------------------------

class ControlTimesBudgetTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ControlTimesBudgetTest, CancellationDuringCappedRunYieldsValidPrefix) {
  const BipartiteGraph graph = WorstCaseGraph();
  std::atomic<bool> cancel{false};
  Options options;
  options.threads = GetParam();
  options.control.cancel = &cancel;
  options.max_memory_bytes = 1 << 20;  // pressure (and maybe exhaustion)
  CollectSink sink;
  RunResult run;
  std::thread trigger([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    cancel.store(true);
  });
  ASSERT_TRUE(Enumerate(graph, options, &sink, &run).ok());
  trigger.join();
  // Whichever limit won the race, the stop must be typed and the prefix
  // valid.
  EXPECT_TRUE(run.termination == Termination::kCancelled ||
              run.termination == Termination::kMemoryLimit)
      << TerminationName(run.termination);
  EXPECT_LE(run.stats.peak_charged_bytes, options.max_memory_bytes);
  ExpectAllMaximal(graph, sink);
}

TEST_P(ControlTimesBudgetTest, DeadlineDuringWatchdoggedDrainYieldsValidPrefix) {
  const BipartiteGraph graph = WorstCaseGraph();
  Options options;
  options.threads = GetParam();
  options.control.deadline_seconds = 0.05;
  options.watchdog_stall_seconds = 30;
  options.max_memory_bytes = uint64_t{1} << 30;
  CollectSink sink;
  RunResult run;
  ASSERT_TRUE(Enumerate(graph, options, &sink, &run).ok());
  EXPECT_TRUE(run.termination == Termination::kDeadline ||
              run.termination == Termination::kMemoryLimit)
      << TerminationName(run.termination);
  ExpectAllMaximal(graph, sink);
}

INSTANTIATE_TEST_SUITE_P(Threads, ControlTimesBudgetTest,
                         ::testing::Values(1u, 2u, 8u));

// --- Fault injection (compiled in only under -DPMBE_FAULT_INJECTION=ON) ---

#if defined(PMBE_FAULT_INJECTION)

// Every fault test disarms on every exit path: the registry is process
// -wide and a leaked schedule would poison later tests.
struct DisarmGuard {
  ~DisarmGuard() { util::FaultRegistry::Global().Disarm(); }
};

TEST(FaultRegistryTest, SpecParsing) {
  DisarmGuard guard;
  auto& reg = util::FaultRegistry::Global();
  EXPECT_TRUE(reg.ArmSpec("arena.grow:3").ok());
  EXPECT_TRUE(reg.ArmSpec("*:p=0.5:seed=9").ok());
  EXPECT_FALSE(reg.ArmSpec("bogus.point:1").ok());
  EXPECT_FALSE(reg.ArmSpec("arena.grow").ok());
  reg.Disarm();
  EXPECT_FALSE(reg.armed());
}

TEST(FaultRegistryTest, SpecMultiClauseAndPerPointProbability) {
  DisarmGuard guard;
  auto& reg = util::FaultRegistry::Global();
  // ';' joins clauses; each clause parses on its own grammar.
  EXPECT_TRUE(reg.ArmSpec("arena.grow:3;sink.flush:p=0.25:seed=7").ok());
  EXPECT_TRUE(reg.armed());
  reg.Disarm();
  // A bad clause fails the whole spec, even after a good one.
  EXPECT_FALSE(reg.ArmSpec("arena.grow:3;bogus.point:1").ok());
  // Per-point p=1 fires every execution of that point and only it.
  ASSERT_TRUE(reg.ArmSpec("net.delay:p=1").ok());
  EXPECT_TRUE(reg.Check("net.delay"));
  EXPECT_FALSE(reg.Check("net.reset"));
  reg.Disarm();
  // Disarm clears per-point probabilities too.
  EXPECT_FALSE(reg.Check("net.delay"));
}

TEST(FaultRegistryTest, SpecWildcardPrefix) {
  DisarmGuard guard;
  auto& reg = util::FaultRegistry::Global();
  // "<prefix>.*" arms every catalog point under the prefix,
  // probability-mode only.
  ASSERT_TRUE(reg.ArmSpec("net.*:p=1:seed=3").ok());
  EXPECT_TRUE(reg.Check("net.accept"));
  EXPECT_TRUE(reg.Check("net.read_stall"));
  EXPECT_TRUE(reg.Check("net.write_truncate"));
  EXPECT_TRUE(reg.Check("net.reset"));
  EXPECT_TRUE(reg.Check("net.delay"));
  EXPECT_FALSE(reg.Check("arena.grow"));
  reg.Disarm();
  // Wildcards reject countdown mode and unmatched prefixes.
  EXPECT_FALSE(reg.ArmSpec("net.*:3").ok());
  EXPECT_FALSE(reg.ArmSpec("zzz.*:p=0.5").ok());
}

TEST(FaultRegistryTest, PerPointProbabilityIsDeterministicInSeed) {
  DisarmGuard guard;
  auto& reg = util::FaultRegistry::Global();
  auto draw_pattern = [&](uint64_t seed) {
    reg.Disarm();
    reg.ArmPointProbability("net.reset", 0.5, seed);
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) pattern.push_back(reg.Check("net.reset"));
    return pattern;
  };
  const std::vector<bool> a1 = draw_pattern(11);
  const std::vector<bool> a2 = draw_pattern(11);
  const std::vector<bool> b = draw_pattern(12);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  // p=0.5 over 64 draws: both outcomes occur.
  EXPECT_NE(std::count(a1.begin(), a1.end(), true), 0);
  EXPECT_NE(std::count(a1.begin(), a1.end(), true), 64);
}

TEST(FaultInjectionTest, AllocationFaultYieldsMemoryLimit) {
  DisarmGuard guard;
  const BipartiteGraph graph = MediumGraph();
  util::FaultRegistry::Global().ArmCountdown("arena.grow", 1);
  CollectSink sink;
  RunResult run;
  ASSERT_TRUE(Enumerate(graph, Options(), &sink, &run).ok());
  EXPECT_EQ(run.termination, Termination::kMemoryLimit)
      << TerminationName(run.termination);
  EXPECT_GE(run.stats.faults_injected, 1u);
  ExpectAllMaximal(graph, sink);
}

TEST(FaultInjectionTest, SinkFlushFaultYieldsInternal) {
  DisarmGuard guard;
  const BipartiteGraph graph = MediumGraph();
  util::FaultRegistry::Global().ArmCountdown("sink.flush", 1);
  Options options;
  options.threads = 2;  // BufferedSink (and its flush point) is per-worker
  CollectSink sink;
  RunResult run;
  ASSERT_TRUE(Enumerate(graph, options, &sink, &run).ok());
  EXPECT_EQ(run.termination, Termination::kInternal)
      << TerminationName(run.termination);
  EXPECT_FALSE(run.message.empty());
  ExpectAllMaximal(graph, sink);
}

TEST(FaultInjectionTest, WorkerStallTripsTheWatchdog) {
  DisarmGuard guard;
  util::FaultRegistry::Global().ArmCountdown("worker.stall", 1);
  Options options;
  options.threads = 2;
  options.watchdog_stall_seconds = 0.05;  // stall sleeps well past this
  CountSink sink;
  RunResult run;
  ASSERT_TRUE(Enumerate(MediumGraph(), options, &sink, &run).ok());
  EXPECT_EQ(run.termination, Termination::kInternal)
      << TerminationName(run.termination);
  EXPECT_FALSE(run.message.empty());
  EXPECT_GE(run.stats.watchdog_checks, 1u);
}

TEST(FaultInjectionTest, LoaderFaultIsIoErrorWithLineNumber) {
  DisarmGuard guard;
  util::FaultRegistry::Global().ArmCountdown("loader.line", 2);
  auto result = ParseEdgeListText("0 0\n1 1\n2 2\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kIoError);
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

// The heart of the acceptance criteria: fire every registered enumeration
// fault point and require a typed, valid-prefix outcome (kComplete is
// allowed — a point may be unreachable under this configuration — but a
// crash or an untyped stop is not).
TEST(FaultSweepTest, EveryPointCountdownOneIsTypedAndValid) {
  const BipartiteGraph graph = MediumGraph();
  for (const char* point : util::kFaultPoints) {
    if (std::string(point) == "loader.line") continue;  // not in Enumerate
    DisarmGuard guard;
    util::FaultRegistry::Global().ArmCountdown(point, 1);
    Options options;
    options.threads = 2;
    options.watchdog_stall_seconds = 1;  // covers worker.stall (sleeps 200ms)
    CollectSink sink;
    RunResult run;
    ASSERT_TRUE(Enumerate(graph, options, &sink, &run).ok()) << point;
    EXPECT_TRUE(run.termination == Termination::kComplete ||
                run.termination == Termination::kMemoryLimit ||
                run.termination == Termination::kInternal)
        << point << ": " << TerminationName(run.termination);
    ExpectAllMaximal(graph, sink);
  }
}

// Deeper countdowns move the fault later into the run: the prefix grows
// but stays valid, and runs the fault never reaches complete with the
// reference digest.
TEST(FaultSweepTest, ArenaCountdownSweepKeepsPrefixesValid) {
  const BipartiteGraph graph = MediumGraph();
  const std::vector<Biclique> reference = ReferenceSet(graph);
  for (uint64_t nth = 1; nth <= 8; ++nth) {
    DisarmGuard guard;
    util::FaultRegistry::Global().ArmCountdown("arena.grow", nth);
    CollectSink sink;
    RunResult run;
    ASSERT_TRUE(Enumerate(graph, Options(), &sink, &run).ok()) << nth;
    const std::vector<Biclique> got = sink.TakeSorted();
    if (run.termination == Termination::kComplete) {
      EXPECT_EQ(got.size(), reference.size()) << nth;
    } else {
      EXPECT_EQ(run.termination, Termination::kMemoryLimit) << nth;
    }
    for (const Biclique& b : got) {
      EXPECT_TRUE(std::binary_search(reference.begin(), reference.end(), b))
          << nth << ": " << ToString(b);
    }
  }
}

TEST(FaultSweepTest, ProbabilisticChaosRunsStayTyped) {
  const BipartiteGraph graph = MediumGraph();
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    DisarmGuard guard;
    util::FaultRegistry::Global().ArmProbability(0.02, seed);
    Options options;
    options.threads = 2;
    options.watchdog_stall_seconds = 1;
    CollectSink sink;
    RunResult run;
    ASSERT_TRUE(Enumerate(graph, options, &sink, &run).ok()) << seed;
    EXPECT_TRUE(run.termination == Termination::kComplete ||
                run.termination == Termination::kMemoryLimit ||
                run.termination == Termination::kInternal)
        << seed << ": " << TerminationName(run.termination);
    ExpectAllMaximal(graph, sink);
  }
}

#endif  // PMBE_FAULT_INJECTION

}  // namespace
}  // namespace mbe
