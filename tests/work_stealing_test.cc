// Tests for the work-stealing substrate: the Chase–Lev task deque, the
// task encoding, and the end-to-end kStealing scheduling discipline
// (digest-identical results across thread counts and schedulings, subtree
// splitting, and run-control cooperation). The deque protocol tests are
// also the payload of the TSan leg in scripts/check.sh.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "api/mbe.h"
#include "gen/generators.h"
#include "parallel/work_stealing.h"

namespace mbe {
namespace {

// --- Task encoding ---------------------------------------------------------

TEST(TaskEncodingTest, RoundTrips) {
  for (const StealTask task :
       {StealTask{0, 0, 1}, StealTask{42, 0, 1}, StealTask{7, 3, 8},
        StealTask{0xffffffffu, 0xfffeu, 0xffffu}}) {
    const StealTask back = DecodeTask(EncodeTask(task));
    EXPECT_EQ(back.v, task.v);
    EXPECT_EQ(back.shard, task.shard);
    EXPECT_EQ(back.num_shards, task.num_shards);
  }
}

// The frontier snapshot format (snapshot/frontier.h) persists encoded
// task words verbatim, making the packing an on-disk contract. Pin its
// boundaries exhaustively: every shard index at the kMaxTaskShards split
// and every 32-bit seed-vertex edge value must survive the round trip.
TEST(TaskEncodingTest, ExhaustiveAtMaxShardsAndVertexBoundaries) {
  for (const VertexId v :
       {VertexId{0}, VertexId{1}, VertexId{0x7fffffffu},
        VertexId{0x80000000u}, VertexId{0xfffffffeu}, VertexId{0xffffffffu}}) {
    for (uint32_t shard = 0; shard < kMaxTaskShards; ++shard) {
      const uint64_t word =
          EncodeTask({.v = v, .shard = shard, .num_shards = kMaxTaskShards});
      const StealTask back = DecodeTask(word);
      ASSERT_EQ(back.v, v);
      ASSERT_EQ(back.shard, shard);
      ASSERT_EQ(back.num_shards, kMaxTaskShards);
    }
  }
  // Distinctness at the packing seams: neighboring fields never alias.
  EXPECT_NE(EncodeTask({.v = 1, .shard = 0, .num_shards = 1}),
            EncodeTask({.v = 0, .shard = 1, .num_shards = 1}));
  EXPECT_NE(EncodeTask({.v = 0, .shard = 1, .num_shards = 2}),
            EncodeTask({.v = 0, .shard = 0, .num_shards = 2}));
}

// --- Deque, single-threaded semantics -------------------------------------

TEST(TaskDequeTest, OwnerPopsLifo) {
  TaskDeque deque;
  for (uint64_t i = 1; i <= 3; ++i) deque.Push(i);
  uint64_t task = 0;
  ASSERT_TRUE(deque.Pop(&task));
  EXPECT_EQ(task, 3u);
  ASSERT_TRUE(deque.Pop(&task));
  EXPECT_EQ(task, 2u);
  ASSERT_TRUE(deque.Pop(&task));
  EXPECT_EQ(task, 1u);
  EXPECT_FALSE(deque.Pop(&task));
}

TEST(TaskDequeTest, ThiefStealsFifo) {
  TaskDeque deque;
  for (uint64_t i = 1; i <= 3; ++i) deque.Push(i);
  uint64_t task = 0;
  ASSERT_TRUE(deque.Steal(&task));
  EXPECT_EQ(task, 1u);
  ASSERT_TRUE(deque.Steal(&task));
  EXPECT_EQ(task, 2u);
  ASSERT_TRUE(deque.Steal(&task));
  EXPECT_EQ(task, 3u);
  EXPECT_FALSE(deque.Steal(&task));
}

TEST(TaskDequeTest, PopAndStealMeetInTheMiddle) {
  TaskDeque deque;
  for (uint64_t i = 1; i <= 10; ++i) deque.Push(i);
  uint64_t task = 0;
  std::vector<bool> seen(11, false);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(deque.Pop(&task));
    seen[task] = true;
    ASSERT_TRUE(deque.Steal(&task));
    seen[task] = true;
  }
  EXPECT_FALSE(deque.Pop(&task));
  EXPECT_FALSE(deque.Steal(&task));
  for (uint64_t i = 1; i <= 10; ++i) EXPECT_TRUE(seen[i]) << i;
}

TEST(TaskDequeTest, GrowthPreservesAllTasks) {
  TaskDeque deque(/*capacity_hint=*/4);  // forces several ring growths
  constexpr uint64_t kN = 5000;
  for (uint64_t i = 1; i <= kN; ++i) deque.Push(i);
  EXPECT_GE(deque.SizeEstimate(), kN - 1);
  std::vector<bool> seen(kN + 1, false);
  uint64_t task = 0;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(deque.Pop(&task));
    ASSERT_FALSE(seen[task]) << "duplicate task " << task;
    seen[task] = true;
  }
  EXPECT_FALSE(deque.Pop(&task));
}

TEST(TaskDequeTest, InterleavedPushPopAcrossGrowth) {
  TaskDeque deque(4);
  uint64_t next = 1;
  uint64_t retired = 0;
  uint64_t task = 0;
  // Sawtooth load keeps top far from zero while the ring grows.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 37; ++i) deque.Push(next++);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(deque.Steal(&task));
      ++retired;
    }
  }
  while (deque.Pop(&task)) ++retired;
  EXPECT_EQ(retired, next - 1);
}

// --- Deque, concurrent stress (the TSan payload) ---------------------------

TEST(TaskDequeStressTest, OwnerAndThievesRetireEveryTaskOnce) {
  constexpr uint64_t kTasks = 20000;
  constexpr unsigned kThieves = 3;
  TaskDeque deque(8);
  std::vector<std::atomic<uint32_t>> hits(kTasks);
  std::atomic<uint64_t> retired{0};
  std::atomic<bool> done_pushing{false};

  auto retire = [&](uint64_t task) {
    hits[task].fetch_add(1, std::memory_order_relaxed);
    retired.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> thieves;
  for (unsigned t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&]() {
      uint64_t task = 0;
      while (retired.load(std::memory_order_relaxed) < kTasks) {
        if (deque.Steal(&task)) {
          retire(task);
        } else if (done_pushing.load(std::memory_order_relaxed)) {
          // Owner may still hold tasks; keep contending until all retire.
          std::this_thread::yield();
        }
      }
    });
  }

  // Owner: push everything (interleaving pops) then drain.
  uint64_t task = 0;
  for (uint64_t i = 0; i < kTasks; ++i) {
    deque.Push(i);
    if (i % 7 == 0 && deque.Pop(&task)) retire(task);
  }
  done_pushing.store(true, std::memory_order_relaxed);
  while (deque.Pop(&task)) retire(task);
  for (std::thread& t : thieves) t.join();

  EXPECT_EQ(retired.load(), kTasks);
  for (uint64_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1u) << "task " << i;
  }
}

// --- End-to-end: digests identical across schedulings ----------------------

uint64_t DigestOf(const BipartiteGraph& graph, Algorithm algorithm,
                  unsigned threads, Scheduling scheduling) {
  Options options;
  options.algorithm = algorithm;
  options.threads = threads;
  options.scheduling = scheduling;
  options.max_split = 8;
  FingerprintSink sink;
  RunResult run;
  const util::Status status = Enumerate(graph, options, &sink, &run);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(run.termination, Termination::kComplete);
  EXPECT_GT(sink.count(), 0u);
  return sink.Digest();
}

class SchedulingDigestTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(SchedulingDigestTest, IdenticalAcrossThreadsAndSchedulings) {
  const Algorithm algorithm = GetParam();
  // A skewed hub graph (one dominant subtree) and a power-law graph: the
  // two load shapes the scheduler must not let affect the result set.
  const BipartiteGraph graphs[] = {
      gen::HubBlock(50, 35, 50, 100, 0.4, 0.03, 21),
      gen::PowerLaw(200, 150, 1200, 0.85, 0.8, 22),
  };
  for (const BipartiteGraph& graph : graphs) {
    const uint64_t reference =
        DigestOf(graph, algorithm, 1, Scheduling::kDynamic);
    for (unsigned threads : {1u, 2u, 8u}) {
      for (Scheduling scheduling : {Scheduling::kDynamic, Scheduling::kStatic,
                                    Scheduling::kStealing}) {
        EXPECT_EQ(DigestOf(graph, algorithm, threads, scheduling), reference)
            << AlgorithmName(algorithm) << " threads=" << threads << " "
            << SchedulingName(scheduling);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, SchedulingDigestTest,
                         ::testing::Values(Algorithm::kMbet,
                                           Algorithm::kImbea,
                                           Algorithm::kBbk));

// --- Run control under stealing -------------------------------------------

TEST(StealingRunControlTest, ResultBudgetIsExactUnderBatching) {
  BipartiteGraph graph = gen::HubBlock(60, 40, 60, 120, 0.4, 0.02, 23);
  Options options;
  options.threads = 8;
  options.scheduling = Scheduling::kStealing;
  options.control.max_results = 50;
  CountSink sink;
  RunResult run;
  ASSERT_TRUE(Enumerate(graph, options, &sink, &run).ok());
  // ControlledSink admits emissions one by one even when workers flush
  // batches, so the cap is exact despite per-worker buffering.
  EXPECT_EQ(run.termination, Termination::kBudget);
  EXPECT_EQ(run.results_emitted, 50u);
  EXPECT_EQ(sink.count(), 50u);
}

TEST(StealingRunControlTest, CancellationDrainsTheFleet) {
  BipartiteGraph graph = gen::HubBlock(60, 40, 60, 120, 0.4, 0.02, 24);
  std::atomic<bool> cancel{true};  // pre-set: stop at the first poll
  Options options;
  options.threads = 8;
  options.scheduling = Scheduling::kStealing;
  options.control.cancel = &cancel;
  CountSink sink;
  RunResult run;
  ASSERT_TRUE(Enumerate(graph, options, &sink, &run).ok());
  EXPECT_EQ(run.termination, Termination::kCancelled);
  // Whatever was emitted before the stop is a valid prefix; the full
  // result set of this graph is far larger than any pre-stop overshoot.
  Options full;
  EXPECT_LT(sink.count(), CountMaximalBicliques(graph, full));
}

}  // namespace
}  // namespace mbe
