// Tests of the facade: id translation under relabeling/swapping, algorithm
// name round trips, and the verification oracle's own validators.

#include <gtest/gtest.h>

#include <algorithm>

#include "api/mbe.h"
#include "core/verify.h"
#include "gen/generators.h"

namespace mbe {
namespace {

TEST(ApiTest, AlgorithmNamesRoundTrip) {
  for (Algorithm algorithm :
       {Algorithm::kMbet, Algorithm::kMbetM, Algorithm::kMineLmbc,
        Algorithm::kMbea, Algorithm::kImbea, Algorithm::kOombeaLite}) {
    // Display names differ from flag names; check parse of flag forms.
    SUCCEED();
    (void)algorithm;
  }
  EXPECT_EQ(ParseAlgorithm("mbet"), Algorithm::kMbet);
  EXPECT_EQ(ParseAlgorithm("mbetm"), Algorithm::kMbetM);
  EXPECT_EQ(ParseAlgorithm("minelmbc"), Algorithm::kMineLmbc);
  EXPECT_EQ(ParseAlgorithm("mbea"), Algorithm::kMbea);
  EXPECT_EQ(ParseAlgorithm("imbea"), Algorithm::kImbea);
  EXPECT_EQ(ParseAlgorithm("oombea"), Algorithm::kOombeaLite);
}

TEST(ApiDeathTest, UnknownAlgorithmAborts) {
  EXPECT_DEATH(ParseAlgorithm("quantum"), "unknown algorithm");
}

TEST(ApiDeathTest, UnsupportedParallelAlgorithmAborts) {
  BipartiteGraph graph = gen::ErdosRenyi(5, 5, 0.5, 1);
  Options options;
  options.algorithm = Algorithm::kMineLmbc;
  options.threads = 4;
  CountSink sink;
  EXPECT_DEATH(Enumerate(graph, options, &sink), "does not support threads");
}

TEST(ApiTest, EmittedIdsAreOriginalUnderEveryPreprocessing) {
  // The emitted bicliques must be valid in the *input* graph regardless of
  // internal relabeling, hub-first ordering, or side swapping.
  BipartiteGraph graph = gen::PowerLaw(30, 50, 250, 0.8, 0.8, 61);
  ASSERT_GT(graph.num_right(), graph.num_left());  // triggers auto swap
  for (bool hub_first : {false, true}) {
    for (VertexOrder order :
         {VertexOrder::kNone, VertexOrder::kDegreeAsc, VertexOrder::kRandom}) {
      Options options;
      options.hub_first_left = hub_first;
      options.order = order;
      options.seed = 3;
      CollectSink sink;
      Enumerate(graph, options, &sink);
      const auto results = sink.TakeSorted();
      EXPECT_EQ(ValidateResultSet(graph, results), "")
          << "hub_first=" << hub_first << " order=" << VertexOrderName(order);
    }
  }
}

TEST(ApiTest, AutoSwapOffKeepsOrientationToo) {
  BipartiteGraph graph = gen::ErdosRenyi(8, 20, 0.3, 62);
  Options no_swap;
  no_swap.auto_swap_sides = false;
  Options swap;
  swap.auto_swap_sides = true;
  CollectSink a, b;
  Enumerate(graph, no_swap, &a);
  Enumerate(graph, swap, &b);
  EXPECT_EQ(DiffResultSets(a.TakeSorted(), b.TakeSorted()), "");
}

TEST(ApiTest, RunResultReportsTimeAndStats) {
  BipartiteGraph graph = gen::PowerLaw(100, 80, 500, 0.8, 0.8, 63);
  CountSink sink;
  RunResult run = Enumerate(graph, Options(), &sink);
  EXPECT_GE(run.seconds, 0.0);
  EXPECT_GE(run.preprocess_seconds, 0.0);
  EXPECT_EQ(run.stats.maximal, sink.count());
}

TEST(ApiTest, CountHelperAgreesWithCollect) {
  BipartiteGraph graph = gen::ErdosRenyi(20, 15, 0.25, 64);
  CollectSink sink;
  Enumerate(graph, Options(), &sink);
  EXPECT_EQ(CountMaximalBicliques(graph, Options()),
            sink.TakeSorted().size());
}

// --- Verification oracle self-tests ------------------------------------------

TEST(VerifyTest, IsBicliqueChecksEdgesAndShape) {
  BipartiteGraph g = BipartiteGraph::FromEdges(3, 3, {{0, 0}, {0, 1}, {1, 0}});
  EXPECT_TRUE(IsBiclique(g, Biclique{{0}, {0, 1}}));
  EXPECT_TRUE(IsBiclique(g, Biclique{{0, 1}, {0}}));
  EXPECT_FALSE(IsBiclique(g, Biclique{{0, 1}, {0, 1}}));  // (1,1) missing
  EXPECT_FALSE(IsBiclique(g, Biclique{{}, {0}}));         // empty side
  EXPECT_FALSE(IsBiclique(g, Biclique{{0, 0}, {1}}));     // duplicate
  EXPECT_FALSE(IsBiclique(g, Biclique{{1, 0}, {0}}));     // unsorted
  EXPECT_FALSE(IsBiclique(g, Biclique{{7}, {0}}));        // out of range
}

TEST(VerifyTest, IsMaximalBicliqueRejectsExtensible) {
  BipartiteGraph g = BipartiteGraph::FromEdges(3, 3, {{0, 0}, {0, 1}, {1, 0}});
  EXPECT_TRUE(IsMaximalBiclique(g, Biclique{{0}, {0, 1}}));
  EXPECT_TRUE(IsMaximalBiclique(g, Biclique{{0, 1}, {0}}));
  // ({0}, {0}) extends to ({0}, {0,1}).
  EXPECT_FALSE(IsMaximalBiclique(g, Biclique{{0}, {0}}));
}

TEST(VerifyTest, ValidateResultSetFindsProblems) {
  BipartiteGraph g = BipartiteGraph::FromEdges(3, 3, {{0, 0}, {0, 1}, {1, 0}});
  const Biclique good{{0}, {0, 1}};
  EXPECT_EQ(ValidateResultSet(g, {good}), "");
  EXPECT_NE(ValidateResultSet(g, {good, good}), "");  // duplicate
  EXPECT_NE(ValidateResultSet(g, {Biclique{{0}, {0}}}), "");  // non-maximal
}

TEST(VerifyTest, DiffResultSetsPinpointsFirstDifference) {
  const Biclique a{{0}, {1}};
  const Biclique b{{1}, {2}};
  EXPECT_EQ(DiffResultSets({a, b}, {b, a}), "");  // order-insensitive
  EXPECT_NE(DiffResultSets({a, b}, {a}), "");
  EXPECT_NE(DiffResultSets({a}, {a, b}), "");
  const std::string missing = DiffResultSets({a, b}, {a});
  EXPECT_NE(missing.find("missing"), std::string::npos);
}

TEST(VerifyTest, BruteForceOnKnownGraph) {
  // Path u0-v0, u0-v1, u1-v1: maximal bicliques ({0},{0,1}), ({0,1},{1}).
  BipartiteGraph g = BipartiteGraph::FromEdges(2, 2, {{0, 0}, {0, 1}, {1, 1}});
  const auto results = BruteForceMbe(g);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0], (Biclique{{0}, {0, 1}}));
  EXPECT_EQ(results[1], (Biclique{{0, 1}, {1}}));
}

TEST(VerifyDeathTest, BruteForceRefusesHugeRightSide) {
  BipartiteGraph g = BipartiteGraph::FromEdges(2, 30, {{0, 0}});
  EXPECT_DEATH(BruteForceMbe(g), "brute force limited");
}

}  // namespace
}  // namespace mbe
