// Structural tests of MBET's counters and resource accounting: the
// ablation switches must move the counters in the documented direction,
// and the memory tracker must balance to zero.

#include <gtest/gtest.h>

#include "core/mbet.h"
#include "core/verify.h"
#include "gen/generators.h"
#include "util/memory.h"

namespace mbe {
namespace {

BipartiteGraph Workload(uint64_t seed = 50) {
  return gen::PowerLaw(300, 200, 1700, 0.85, 0.8, seed);
}

TEST(MbetStatsTest, MaximalCounterMatchesEmissions) {
  BipartiteGraph graph = Workload();
  CountSink sink;
  MbetEnumerator engine(graph, MbetOptions{});
  engine.EnumerateAll(&sink);
  EXPECT_EQ(engine.stats().maximal, sink.count());
  EXPECT_GT(engine.stats().nodes_expanded, 0u);
}

TEST(MbetStatsTest, AggregationOffMeansNoMerges) {
  BipartiteGraph graph = Workload();
  MbetOptions options;
  options.use_aggregation = false;
  CountSink sink;
  MbetEnumerator engine(graph, options);
  engine.EnumerateAll(&sink);
  EXPECT_EQ(engine.stats().vertices_aggregated, 0u);
}

TEST(MbetStatsTest, AggregationReducesNodeCount) {
  BipartiteGraph graph = Workload();
  MbetOptions with_agg;
  MbetOptions without_agg;
  without_agg.use_aggregation = false;

  CountSink s1, s2;
  MbetEnumerator a(graph, with_agg);
  a.EnumerateAll(&s1);
  MbetEnumerator b(graph, without_agg);
  b.EnumerateAll(&s2);

  EXPECT_EQ(s1.count(), s2.count());
  EXPECT_GT(a.stats().vertices_aggregated, 0u);
  // Merged groups are traversed once instead of once per member.
  EXPECT_LT(a.stats().nodes_expanded + a.stats().non_maximal,
            b.stats().nodes_expanded + b.stats().non_maximal);
}

TEST(MbetStatsTest, TrieReducesProbesOnWideNodes) {
  BipartiteGraph graph = Workload();
  MbetOptions with_trie;
  with_trie.trie_min_groups = 1;  // force the trie everywhere
  MbetOptions without_trie;
  without_trie.use_trie = false;

  CountSink s1, s2;
  MbetEnumerator a(graph, with_trie);
  a.EnumerateAll(&s1);
  MbetEnumerator b(graph, without_trie);
  b.EnumerateAll(&s2);

  EXPECT_EQ(s1.count(), s2.count());
  // Identical logical scans, fewer physical probes via shared prefixes.
  EXPECT_EQ(a.stats().local_scan_size, b.stats().local_scan_size);
  EXPECT_LT(a.stats().trie_probes, b.stats().trie_probes);
}

TEST(MbetStatsTest, TrieThresholdDoesNotChangeResults) {
  BipartiteGraph graph = Workload(51);
  uint64_t reference = 0;
  for (uint32_t threshold : {1u, 2u, 4u, 16u, 1000000u}) {
    MbetOptions options;
    options.trie_min_groups = threshold;
    FingerprintSink sink;
    MbetEnumerator engine(graph, options);
    engine.EnumerateAll(&sink);
    if (threshold == 1) {
      reference = sink.Digest();
    } else {
      EXPECT_EQ(sink.Digest(), reference) << "threshold=" << threshold;
    }
  }
}

TEST(MbetStatsTest, QPruningOnlyAffectsWork) {
  BipartiteGraph graph = Workload(52);
  MbetOptions keep_q;
  keep_q.prune_q = false;
  MbetOptions drop_q;

  FingerprintSink s1, s2;
  MbetEnumerator a(graph, keep_q);
  a.EnumerateAll(&s1);
  MbetEnumerator b(graph, drop_q);
  b.EnumerateAll(&s2);
  EXPECT_EQ(s1.Digest(), s2.Digest());
  // Keeping dead Q groups means strictly more scanning.
  EXPECT_GE(a.stats().local_scan_size, b.stats().local_scan_size);
}

TEST(MbetStatsTest, MemoryTrackerBalancesToZero) {
  BipartiteGraph graph = Workload(53);
  util::MemoryTracker tracker;
  MbetOptions options;
  options.memory = &tracker;
  CountSink sink;
  MbetEnumerator engine(graph, options);
  engine.EnumerateAll(&sink);
  EXPECT_EQ(tracker.current(), 0u) << "level accounting leaked";
  EXPECT_GT(tracker.peak(), 0u);
}

TEST(MbetStatsTest, MbetmPeakBelowMbetPeak) {
  BipartiteGraph graph = Workload(54);
  util::MemoryTracker full_tracker, slim_tracker;

  MbetOptions full;
  full.memory = &full_tracker;
  CountSink s1;
  MbetEnumerator a(graph, full);
  a.EnumerateAll(&s1);

  MbetOptions slim;
  slim.recompute_locals = true;
  slim.memory = &slim_tracker;
  CountSink s2;
  MbetEnumerator b(graph, slim);
  b.EnumerateAll(&s2);

  EXPECT_EQ(s1.count(), s2.count());
  EXPECT_LT(slim_tracker.peak(), full_tracker.peak());
}

TEST(MbetStatsTest, ResetStatsClears) {
  BipartiteGraph graph = Workload(55);
  CountSink sink;
  MbetEnumerator engine(graph, MbetOptions{});
  engine.EnumerateAll(&sink);
  ASSERT_GT(engine.stats().maximal, 0u);
  engine.ResetStats();
  EXPECT_EQ(engine.stats().maximal, 0u);
  EXPECT_EQ(engine.stats().nodes_expanded, 0u);
}

TEST(MbetStatsTest, SubtreePrunesAppearOnTwinHeavyGraphs) {
  // Many duplicate neighborhoods -> later twins prune their subtrees.
  std::vector<Edge> edges;
  for (VertexId v = 0; v < 10; ++v) {
    edges.push_back({0, v});
    edges.push_back({1, v});
  }
  BipartiteGraph graph = BipartiteGraph::FromEdges(2, 10, edges);
  CountSink sink;
  MbetEnumerator engine(graph, MbetOptions{});
  engine.EnumerateAll(&sink);
  EXPECT_EQ(sink.count(), 1u);  // one maximal biclique: ({0,1}, all V)
  EXPECT_EQ(engine.stats().subtrees_pruned, 9u);
}

TEST(MbetStatsTest, EnumStatsMergeAddsFields) {
  EnumStats a, b;
  a.maximal = 3;
  a.nodes_expanded = 10;
  b.maximal = 4;
  b.trie_probes = 7;
  a.MergeFrom(b);
  EXPECT_EQ(a.maximal, 7u);
  EXPECT_EQ(a.nodes_expanded, 10u);
  EXPECT_EQ(a.trie_probes, 7u);
}

}  // namespace
}  // namespace mbe
