// Unit tests for the subtree-root builder: the per-vertex decomposition
// every enumerator and the parallel driver rely on.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/subtree.h"
#include "gen/generators.h"

namespace mbe {
namespace {

// The running-example graph of the MBE literature (5 x 4).
BipartiteGraph LiteratureGraph() {
  return BipartiteGraph::FromEdges(
      5, 4,
      {{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}, {1, 3}, {2, 1},
       {3, 1}, {3, 2}, {3, 3}, {4, 3}});
}

TEST(SubtreeBuilderTest, RootOfFirstVertex) {
  BipartiteGraph g = LiteratureGraph();
  SubtreeBuilder builder(g);
  SubtreeRoot root;
  std::vector<VertexId> absorbed;
  bool pruned = false;
  ASSERT_TRUE(builder.Build(0, &root, &absorbed, &pruned));
  EXPECT_FALSE(pruned);
  EXPECT_EQ(root.seed, 0u);
  // L0 = N(v0) = {u0, u1}.
  EXPECT_EQ(root.l0, (std::vector<VertexId>{0, 1}));
  // No other vertex is adjacent to both u0 and u1 except v1, v2 — check
  // absorbed: N(v1) = {u0,u1,u2,u3} ⊇ L0, N(v2) = {u0,u1,u3} ⊇ L0.
  EXPECT_EQ(absorbed, (std::vector<VertexId>{1, 2}));
  // v3 has loc {u1}: stays a candidate entry, not forbidden (3 > 0).
  ASSERT_EQ(root.entries.size(), 1u);
  EXPECT_EQ(root.entries[0].w, 3u);
  EXPECT_FALSE(root.entries[0].forbidden);
  auto loc = root.LocOf(root.entries[0]);
  EXPECT_EQ(std::vector<VertexId>(loc.begin(), loc.end()),
            (std::vector<VertexId>{1}));
}

TEST(SubtreeBuilderTest, LaterVertexSeesForbiddenPredecessors) {
  BipartiteGraph g = LiteratureGraph();
  SubtreeBuilder builder(g);
  SubtreeRoot root;
  std::vector<VertexId> absorbed;
  bool pruned = false;
  // v2: L0 = N(v2) = {u0, u1, u3}; v1 (earlier, N={u0,u1,u2,u3} ⊇ L0)
  // dominates -> the subtree is pruned.
  EXPECT_FALSE(builder.Build(2, &root, &absorbed, &pruned));
  EXPECT_TRUE(pruned);
}

TEST(SubtreeBuilderTest, ZeroDegreeVertexYieldsNoSubtree) {
  BipartiteGraph g = BipartiteGraph::FromEdges(3, 3, {{0, 0}});
  SubtreeBuilder builder(g);
  SubtreeRoot root;
  std::vector<VertexId> absorbed;
  bool pruned = false;
  EXPECT_FALSE(builder.Build(1, &root, &absorbed, &pruned));
  EXPECT_FALSE(pruned);
}

TEST(SubtreeBuilderTest, TwinVerticesAbsorbForward) {
  // v0 and v1 are twins (same neighborhood). subtree(v0) absorbs v1;
  // subtree(v1) is pruned.
  BipartiteGraph g =
      BipartiteGraph::FromEdges(2, 2, {{0, 0}, {1, 0}, {0, 1}, {1, 1}});
  SubtreeBuilder builder(g);
  SubtreeRoot root;
  std::vector<VertexId> absorbed;
  bool pruned = false;
  ASSERT_TRUE(builder.Build(0, &root, &absorbed, &pruned));
  EXPECT_EQ(absorbed, (std::vector<VertexId>{1}));
  EXPECT_TRUE(root.entries.empty());

  EXPECT_FALSE(builder.Build(1, &root, &absorbed, &pruned));
  EXPECT_TRUE(pruned);
}

TEST(SubtreeBuilderTest, EntriesCoverExactlyUsefulTwoHops) {
  BipartiteGraph g = gen::PowerLaw(60, 40, 300, 0.8, 0.8, 3);
  SubtreeBuilder builder(g);
  SubtreeRoot root;
  std::vector<VertexId> absorbed;
  bool pruned = false;
  for (VertexId v = 0; v < g.num_right(); ++v) {
    if (!builder.Build(v, &root, &absorbed, &pruned)) continue;
    // Every entry has a nonempty local that is a strict subset of L0,
    // sorted, and consistent with the adjacency.
    for (const RootEntry& entry : root.entries) {
      auto loc = root.LocOf(entry);
      EXPECT_FALSE(loc.empty());
      EXPECT_LT(loc.size(), root.l0.size());
      EXPECT_TRUE(std::is_sorted(loc.begin(), loc.end()));
      EXPECT_EQ(entry.forbidden, entry.w < v);
      for (VertexId u : loc) {
        EXPECT_TRUE(g.HasEdge(u, entry.w));
        EXPECT_TRUE(g.HasEdge(u, v));
      }
    }
    // Absorbed vertices dominate L0 entirely.
    for (VertexId w : absorbed) {
      EXPECT_GT(w, v);
      for (VertexId u : root.l0) EXPECT_TRUE(g.HasEdge(u, w));
    }
  }
}

TEST(SubtreeWorkTest, EstimateScalesWithRootSize) {
  SubtreeRoot small;
  small.l0 = {0, 1};
  small.entries.resize(3);
  SubtreeRoot large;
  large.l0 = {0, 1, 2, 3, 4, 5};
  large.entries.resize(50);
  EXPECT_LT(EstimateSubtreeWork(small), EstimateSubtreeWork(large));

  SubtreeRoot empty;
  EXPECT_EQ(EstimateSubtreeWork(empty), 0u);
}

}  // namespace
}  // namespace mbe
