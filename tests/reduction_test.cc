// Unit and integration tests for (p, q)-core reduction: the peel must be a
// fixpoint, the id maps must be consistent, and size-constrained
// enumeration must produce identical results with and without it.

#include <gtest/gtest.h>

#include <numeric>

#include "api/mbe.h"
#include "core/verify.h"
#include "gen/generators.h"
#include "graph/reduction.h"

namespace mbe {
namespace {

TEST(PqCoreReduceTest, TrivialThresholdsAreIdentity) {
  BipartiteGraph g = gen::ErdosRenyi(10, 8, 0.3, 1);
  CoreReduction r = PqCoreReduce(g, 1, 1);
  EXPECT_EQ(r.graph, g);
  EXPECT_EQ(r.removed_left, 0u);
  EXPECT_EQ(r.removed_right, 0u);
  std::vector<VertexId> identity(g.num_left());
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_EQ(r.left_old, identity);
}

TEST(PqCoreReduceTest, ResultIsAFixpoint) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    BipartiteGraph g = gen::PowerLaw(200, 150, 900, 0.85, 0.8, seed);
    for (size_t p : {2u, 3u}) {
      for (size_t q : {2u, 4u}) {
        CoreReduction r = PqCoreReduce(g, p, q);
        for (VertexId u = 0; u < r.graph.num_left(); ++u) {
          EXPECT_GE(r.graph.LeftDegree(u), q) << "p=" << p << " q=" << q;
        }
        for (VertexId v = 0; v < r.graph.num_right(); ++v) {
          EXPECT_GE(r.graph.RightDegree(v), p);
        }
      }
    }
  }
}

TEST(PqCoreReduceTest, MapsPointAtRealEdges) {
  BipartiteGraph g = gen::PowerLaw(100, 80, 400, 0.8, 0.8, 4);
  CoreReduction r = PqCoreReduce(g, 2, 2);
  for (VertexId u = 0; u < r.graph.num_left(); ++u) {
    for (VertexId v : r.graph.LeftNeighbors(u)) {
      EXPECT_TRUE(g.HasEdge(r.left_old[u], r.right_old[v]));
    }
  }
}

TEST(PqCoreReduceTest, CascadingPeel) {
  // Chain: u0-v0, u0-v1, u1-v1. (2,2)-core is empty; removing v0 (deg 1 <
  // 2) drops u0 below 2, which drops v1, which drops u1.
  BipartiteGraph g = BipartiteGraph::FromEdges(2, 2, {{0, 0}, {0, 1}, {1, 1}});
  CoreReduction r = PqCoreReduce(g, 2, 2);
  EXPECT_EQ(r.graph.num_left(), 0u);
  EXPECT_EQ(r.graph.num_right(), 0u);
  EXPECT_EQ(r.removed_left, 2u);
  EXPECT_EQ(r.removed_right, 2u);
}

TEST(PqCoreReduceTest, DenseBlockSurvives) {
  std::vector<Edge> edges;
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = 0; v < 4; ++v) edges.push_back({u, v});
  }
  edges.push_back({4, 0});  // pendant left vertex
  BipartiteGraph g = BipartiteGraph::FromEdges(5, 4, edges);
  CoreReduction r = PqCoreReduce(g, 3, 3);
  EXPECT_EQ(r.graph.num_left(), 4u);
  EXPECT_EQ(r.graph.num_right(), 4u);
  EXPECT_EQ(r.removed_left, 1u);
}

TEST(PqCoreReduceTest, PreservesQualifyingBicliquesEndToEnd) {
  // Size-constrained enumeration with and without core reduction must
  // agree exactly — on graphs where the reduction removes a lot.
  for (uint64_t seed : {31u, 32u, 33u, 34u}) {
    BipartiteGraph g = gen::PowerLaw(300, 200, 1200, 0.9, 0.85, seed);
    Options with;
    with.mbet.min_left = 3;
    with.mbet.min_right = 3;
    with.core_reduce = true;
    Options without = with;
    without.core_reduce = false;

    CollectSink a, b;
    Enumerate(g, with, &a);
    Enumerate(g, without, &b);
    EXPECT_EQ(DiffResultSets(b.TakeSorted(), a.TakeSorted()), "")
        << "seed=" << seed;
  }
}

TEST(PqCoreReduceTest, ReductionShrinksSkewedGraphs) {
  BipartiteGraph g = gen::PowerLaw(2000, 1500, 8000, 0.9, 0.85, 35);
  CoreReduction r = PqCoreReduce(g, 3, 3);
  // Power-law graphs are mostly degree-1/2 fringe at these densities: the
  // (3,3)-core keeps well under half the vertices.
  EXPECT_LT(r.graph.num_left() + r.graph.num_right(),
            (g.num_left() + g.num_right()) / 2);
  EXPECT_LT(r.graph.num_edges(), g.num_edges());
}

TEST(PqCoreReduceTest, EmptyCoreYieldsEmptyEnumeration) {
  BipartiteGraph g = gen::ErdosRenyi(40, 40, 0.03, 36);
  Options options;
  options.mbet.min_left = 20;
  options.mbet.min_right = 20;
  EXPECT_EQ(CountMaximalBicliques(g, options), 0u);
}

}  // namespace
}  // namespace mbe
