// Unit tests for the analytics sinks (shape, top-k, tee).

#include <gtest/gtest.h>

#include <algorithm>

#include "api/mbe.h"
#include "core/analysis.h"
#include "gen/generators.h"

namespace mbe {
namespace {

void EmitPair(ResultSink& sink, std::vector<VertexId> l,
              std::vector<VertexId> r) {
  sink.Emit(l, r);
}

TEST(ShapeSinkTest, AccumulatesShape) {
  ShapeSink sink;
  EmitPair(sink, {1, 2}, {3, 4});        // 4 edges -> bucket 2
  EmitPair(sink, {1}, {2});              // 1 edge  -> bucket 0
  EmitPair(sink, {1, 2, 3}, {4, 5, 6});  // 9 edges -> bucket 3
  ResultShape shape = sink.shape();
  EXPECT_EQ(shape.count, 3u);
  EXPECT_EQ(shape.edge_total, 14u);
  EXPECT_EQ(shape.max_left, 3u);
  EXPECT_EQ(shape.max_right, 3u);
  EXPECT_EQ(shape.max_edges, 9u);
  ASSERT_GE(shape.edge_histogram.size(), 4u);
  EXPECT_EQ(shape.edge_histogram[0], 1u);
  EXPECT_EQ(shape.edge_histogram[2], 1u);
  EXPECT_EQ(shape.edge_histogram[3], 1u);
}

TEST(TopKSinkTest, KeepsLargestK) {
  TopKSink sink(2);
  EmitPair(sink, {1}, {2});              // 1 edge
  EmitPair(sink, {1, 2, 3}, {4, 5});     // 6 edges
  EmitPair(sink, {1, 2}, {3, 4});        // 4 edges
  EmitPair(sink, {9}, {8});              // 1 edge
  const auto top = sink.Take();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].num_edges(), 6u);
  EXPECT_EQ(top[1].num_edges(), 4u);
}

TEST(TopKSinkTest, FewerThanKResults) {
  TopKSink sink(10);
  EmitPair(sink, {1}, {2});
  const auto top = sink.Take();
  ASSERT_EQ(top.size(), 1u);
}

TEST(TopKSinkTest, DeterministicUnderTies) {
  // Three 1-edge bicliques, k = 2: the two lexicographically smallest win
  // regardless of arrival order.
  for (int order = 0; order < 2; ++order) {
    TopKSink sink(2);
    if (order == 0) {
      EmitPair(sink, {1}, {1});
      EmitPair(sink, {2}, {2});
      EmitPair(sink, {3}, {3});
    } else {
      EmitPair(sink, {3}, {3});
      EmitPair(sink, {2}, {2});
      EmitPair(sink, {1}, {1});
    }
    auto top = sink.Take();
    std::sort(top.begin(), top.end());
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0], (Biclique{{1}, {1}}));
    EXPECT_EQ(top[1], (Biclique{{2}, {2}}));
  }
}

TEST(TeeSinkTest, FansOutAndPropagatesStop) {
  CountSink a;
  ShapeSink b;
  TeeSink tee({&a, &b});
  EmitPair(tee, {1, 2}, {3});
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(b.shape().count, 1u);
  EXPECT_FALSE(tee.ShouldStop());

  CountSink inner;
  BudgetSink stopper(&inner, 1, 0);
  TeeSink tee2({&a, &stopper});
  EmitPair(tee2, {1}, {2});
  EXPECT_TRUE(tee2.ShouldStop());
}

TEST(AnalysisIntegrationTest, OnePassCountShapeTopK) {
  BipartiteGraph graph = gen::PowerLaw(200, 150, 1000, 0.85, 0.8, 80);
  CountSink count;
  ShapeSink shape;
  TopKSink topk(5);
  TeeSink tee({&count, &shape, &topk});
  Enumerate(graph, Options(), &tee);

  EXPECT_EQ(shape.shape().count, count.count());
  const auto top = topk.Take();
  ASSERT_LE(top.size(), 5u);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].num_edges(), shape.shape().max_edges);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].num_edges(), top[i].num_edges());
  }
  uint64_t hist_total = 0;
  for (uint64_t h : shape.shape().edge_histogram) hist_total += h;
  EXPECT_EQ(hist_total, count.count());
}

TEST(AnalysisIntegrationTest, ParallelTeeIsConsistent) {
  BipartiteGraph graph = gen::PowerLaw(200, 150, 1000, 0.85, 0.8, 81);
  Options options;
  options.threads = 4;
  CountSink count;
  TopKSink topk(3);
  TeeSink tee({&count, &topk});
  Enumerate(graph, options, &tee);

  Options serial;
  TopKSink serial_topk(3);
  CountSink serial_count;
  TeeSink serial_tee({&serial_count, &serial_topk});
  Enumerate(graph, serial, &serial_tee);

  EXPECT_EQ(count.count(), serial_count.count());
  auto a = topk.Take();
  auto b = serial_topk.Take();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace mbe
