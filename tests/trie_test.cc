// Unit and property tests for the prefix tree: both builders agree with a
// direct per-list computation, share prefixes structurally, and keep the
// preorder invariant the classification scan depends on.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/neighborhood_trie.h"
#include "core/set_ops.h"
#include "util/random.h"

namespace mbe {
namespace {

using Lists = std::vector<std::vector<VertexId>>;

std::vector<std::span<const VertexId>> Spans(const Lists& lists) {
  std::vector<std::span<const VertexId>> spans;
  spans.reserve(lists.size());
  for (const auto& l : lists) spans.emplace_back(l);
  return spans;
}

std::vector<uint32_t> DirectCounts(const Lists& lists,
                                   const MembershipMask& mask) {
  std::vector<uint32_t> counts;
  for (const auto& l : lists) {
    counts.push_back(static_cast<uint32_t>(IntersectSizeWithMask(l, mask)));
  }
  return counts;
}

TEST(NeighborhoodTrieTest, HandExample) {
  // Three lists sharing the prefix {1, 2}.
  Lists lists = {{1, 2, 5}, {1, 2, 7}, {1, 2}, {9}};
  NeighborhoodTrie trie;
  trie.BuildUnordered(Spans(lists));
  // Nodes: 1, 2, 5, 7, 9 -> 5 (prefix shared once).
  EXPECT_EQ(trie.num_nodes(), 5u);
  EXPECT_EQ(trie.num_groups(), 4u);
  EXPECT_EQ(trie.total_list_length(), 3u + 3u + 2u + 1u);

  MembershipMask mask(16);
  std::vector<VertexId> members = {1, 5, 9};
  mask.Set(members);
  std::vector<uint32_t> counts;
  const size_t probed = trie.ClassifyAll(mask, &counts);
  EXPECT_EQ(probed, trie.num_nodes());
  EXPECT_EQ(counts, (std::vector<uint32_t>{2, 1, 1, 1}));
}

TEST(NeighborhoodTrieTest, EmptyAndSingletonLists) {
  Lists lists = {{}, {3}, {}};
  NeighborhoodTrie trie;
  trie.BuildUnordered(Spans(lists));
  EXPECT_EQ(trie.num_nodes(), 1u);
  MembershipMask mask(8);
  std::vector<VertexId> members = {3};
  mask.Set(members);
  std::vector<uint32_t> counts;
  trie.ClassifyAll(mask, &counts);
  EXPECT_EQ(counts, (std::vector<uint32_t>{0, 1, 0}));
}

TEST(NeighborhoodTrieTest, EmptyListMidOrderDoesNotDuplicatePath) {
  // Regression: an empty list between two prefix-sharing lists used to
  // reset the running path, so the second list re-inserted its full path
  // and duplicated the shared {1, 2} prefix (6 nodes instead of 4).
  Lists lists = {{1, 2, 3}, {}, {1, 2, 4}};
  const std::vector<uint32_t> order = {0, 1, 2};
  NeighborhoodTrie trie;
  trie.Build(Spans(lists), order);
  EXPECT_EQ(trie.num_nodes(), 4u);
  EXPECT_EQ(trie.num_groups(), 3u);

  MembershipMask mask(8);
  std::vector<VertexId> members = {1, 2, 4};
  mask.Set(members);
  std::vector<uint32_t> counts;
  trie.ClassifyAll(mask, &counts);
  EXPECT_EQ(counts, DirectCounts(lists, mask));
  EXPECT_EQ(counts, (std::vector<uint32_t>{2, 0, 3}));
}

TEST(NeighborhoodTrieTest, EmptyListsSprinkledIntoLexicographicOrder) {
  // Empty lists are prefixes of everything, so placing them anywhere in an
  // otherwise lexicographic order is legal and must not change structure.
  Lists lists = {{}, {1, 2}, {}, {1, 2, 5}, {}, {3}, {}};
  const std::vector<uint32_t> order = {0, 1, 2, 3, 4, 5, 6};
  NeighborhoodTrie trie;
  trie.Build(Spans(lists), order);
  EXPECT_EQ(trie.num_nodes(), 4u);  // 1, 2, 5, 3

  MembershipMask mask(8);
  std::vector<VertexId> members = {2, 3, 5};
  mask.Set(members);
  std::vector<uint32_t> counts;
  trie.ClassifyAll(mask, &counts);
  EXPECT_EQ(counts, DirectCounts(lists, mask));
}

TEST(NeighborhoodTrieTest, NoLists) {
  NeighborhoodTrie trie;
  trie.BuildUnordered({});
  EXPECT_EQ(trie.num_nodes(), 0u);
  MembershipMask mask(4);
  std::vector<uint32_t> counts = {42};
  trie.ClassifyAll(mask, &counts);
  EXPECT_TRUE(counts.empty());
}

TEST(NeighborhoodTrieTest, IdenticalListsShareEntirePath) {
  Lists lists = {{2, 4, 6}, {2, 4, 6}, {2, 4, 6}};
  NeighborhoodTrie trie;
  trie.BuildUnordered(Spans(lists));
  EXPECT_EQ(trie.num_nodes(), 3u);  // one path, three chained terminals
  MembershipMask mask(8);
  std::vector<VertexId> members = {4, 6};
  mask.Set(members);
  std::vector<uint32_t> counts;
  trie.ClassifyAll(mask, &counts);
  EXPECT_EQ(counts, (std::vector<uint32_t>{2, 2, 2}));
}

TEST(NeighborhoodTrieTest, DisjointListsShareNothing) {
  Lists lists = {{1, 2}, {3, 4}, {5}};
  NeighborhoodTrie trie;
  trie.BuildUnordered(Spans(lists));
  EXPECT_EQ(trie.num_nodes(), 5u);
}

TEST(NeighborhoodTrieTest, OrderedBuilderAgreesWithUnordered) {
  util::Rng rng(31);
  for (int round = 0; round < 50; ++round) {
    Lists lists;
    const size_t n = 1 + rng.Below(40);
    for (size_t i = 0; i < n; ++i) {
      std::set<VertexId> s;
      const size_t len = rng.Below(12);
      for (size_t j = 0; j < len; ++j) {
        s.insert(static_cast<VertexId>(rng.Below(30)));
      }
      lists.emplace_back(s.begin(), s.end());
    }
    NeighborhoodTrie ordered, unordered;
    ordered.Build(Spans(lists));  // sorts lexicographically internally
    unordered.BuildUnordered(Spans(lists));
    EXPECT_EQ(ordered.num_nodes(), unordered.num_nodes());

    MembershipMask mask(30);
    std::vector<VertexId> members;
    for (VertexId v = 0; v < 30; ++v) {
      if (rng.Chance(0.5)) members.push_back(v);
    }
    mask.Set(members);
    std::vector<uint32_t> a, b;
    ordered.ClassifyAll(mask, &a);
    unordered.ClassifyAll(mask, &b);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, DirectCounts(lists, mask));
    mask.Clear(members);
  }
}

class TrieProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrieProperty, ClassifyMatchesDirectOnRandomWorkloads) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 30; ++round) {
    // Generate lists with a deliberately shared prefix pool to exercise
    // path sharing.
    std::vector<VertexId> prefix_pool;
    for (VertexId v = 0; v < 10; ++v) prefix_pool.push_back(v);
    Lists lists;
    const size_t n = 1 + rng.Below(60);
    for (size_t i = 0; i < n; ++i) {
      std::set<VertexId> s;
      const size_t shared = rng.Below(prefix_pool.size());
      for (size_t j = 0; j < shared; ++j) s.insert(prefix_pool[j]);
      const size_t extra = rng.Below(8);
      for (size_t j = 0; j < extra; ++j) {
        s.insert(static_cast<VertexId>(10 + rng.Below(90)));
      }
      lists.emplace_back(s.begin(), s.end());
    }
    NeighborhoodTrie trie;
    trie.BuildUnordered(Spans(lists));
    // Sharing bound: never more nodes than total length.
    EXPECT_LE(trie.num_nodes(), trie.total_list_length());

    for (int probe = 0; probe < 5; ++probe) {
      MembershipMask mask(100);
      std::vector<VertexId> members;
      for (VertexId v = 0; v < 100; ++v) {
        if (rng.Chance(0.4)) members.push_back(v);
      }
      mask.Set(members);
      std::vector<uint32_t> counts;
      trie.ClassifyAll(mask, &counts);
      EXPECT_EQ(counts, DirectCounts(lists, mask));
      mask.Clear(members);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieProperty,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

TEST(NeighborhoodTrieTest, RebuildReusesCleanly) {
  NeighborhoodTrie trie;
  Lists first = {{1, 2, 3}, {1, 2, 4}};
  trie.BuildUnordered(Spans(first));
  EXPECT_EQ(trie.num_nodes(), 4u);
  Lists second = {{7}};
  trie.BuildUnordered(Spans(second));
  EXPECT_EQ(trie.num_nodes(), 1u);
  EXPECT_EQ(trie.num_groups(), 1u);
  MembershipMask mask(8);
  std::vector<VertexId> members = {7};
  mask.Set(members);
  std::vector<uint32_t> counts;
  trie.ClassifyAll(mask, &counts);
  EXPECT_EQ(counts, (std::vector<uint32_t>{1}));
}

TEST(NeighborhoodTrieTest, MemoryBytesTracksArenas) {
  NeighborhoodTrie trie;
  EXPECT_EQ(trie.MemoryBytes(), 0u);
  Lists lists = {{1, 2, 3, 4, 5}};
  trie.BuildUnordered(Spans(lists));
  EXPECT_GT(trie.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace mbe
