// Unit tests for the bipartite graph substrate: construction, adjacency,
// relabeling, side swap, statistics, and two-hop neighborhoods.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "gen/generators.h"
#include "graph/bipartite_graph.h"
#include "graph/two_hop.h"
#include "util/random.h"

namespace mbe {
namespace {

BipartiteGraph SampleGraph() {
  // u0-{v0,v1}, u1-{v1,v2}, u2-{}, u3-{v0,v1,v2,v3}
  return BipartiteGraph::FromEdges(
      4, 4, {{0, 0}, {0, 1}, {1, 1}, {1, 2}, {3, 0}, {3, 1}, {3, 2}, {3, 3}});
}

TEST(BipartiteGraphTest, BasicProperties) {
  BipartiteGraph g = SampleGraph();
  EXPECT_EQ(g.num_left(), 4u);
  EXPECT_EQ(g.num_right(), 4u);
  EXPECT_EQ(g.num_edges(), 8u);
  EXPECT_EQ(g.LeftDegree(0), 2u);
  EXPECT_EQ(g.LeftDegree(2), 0u);
  EXPECT_EQ(g.RightDegree(1), 3u);
  EXPECT_EQ(g.MaxLeftDegree(), 4u);
  EXPECT_EQ(g.MaxRightDegree(), 3u);
}

TEST(BipartiteGraphTest, NeighborListsAreSortedAndCorrect) {
  BipartiteGraph g = SampleGraph();
  auto n0 = g.LeftNeighbors(3);
  EXPECT_TRUE(std::is_sorted(n0.begin(), n0.end()));
  EXPECT_EQ(std::vector<VertexId>(n0.begin(), n0.end()),
            (std::vector<VertexId>{0, 1, 2, 3}));
  auto r1 = g.RightNeighbors(1);
  EXPECT_EQ(std::vector<VertexId>(r1.begin(), r1.end()),
            (std::vector<VertexId>{0, 1, 3}));
}

TEST(BipartiteGraphTest, DuplicateEdgesCollapse) {
  BipartiteGraph g = BipartiteGraph::FromEdges(
      2, 2, {{0, 0}, {0, 0}, {0, 0}, {1, 1}, {1, 1}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.LeftDegree(0), 1u);
}

TEST(BipartiteGraphTest, HasEdge) {
  BipartiteGraph g = SampleGraph();
  EXPECT_TRUE(g.HasEdge(0, 0));
  EXPECT_TRUE(g.HasEdge(3, 3));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(2, 0));
  EXPECT_FALSE(g.HasEdge(99, 0));
  EXPECT_FALSE(g.HasEdge(0, 99));
}

TEST(BipartiteGraphTest, SwappedTransposesAdjacency) {
  BipartiteGraph g = SampleGraph();
  BipartiteGraph s = g.Swapped();
  EXPECT_EQ(s.num_left(), g.num_right());
  EXPECT_EQ(s.num_right(), g.num_left());
  EXPECT_EQ(s.num_edges(), g.num_edges());
  for (VertexId u = 0; u < g.num_left(); ++u) {
    for (VertexId v = 0; v < g.num_right(); ++v) {
      EXPECT_EQ(g.HasEdge(u, v), s.HasEdge(v, u));
    }
  }
  EXPECT_EQ(s.Swapped(), g);
}

TEST(BipartiteGraphTest, ToEdgesRoundTrips) {
  BipartiteGraph g = gen::ErdosRenyi(20, 30, 0.2, 42);
  BipartiteGraph rebuilt =
      BipartiteGraph::FromEdges(g.num_left(), g.num_right(), g.ToEdges());
  EXPECT_EQ(g, rebuilt);
}

TEST(BipartiteGraphTest, RelabelRightPermutesAdjacency) {
  BipartiteGraph g = SampleGraph();
  // perm[i] = old id of new i: reverse order.
  std::vector<VertexId> perm = {3, 2, 1, 0};
  BipartiteGraph r = g.RelabelRight(perm);
  for (VertexId u = 0; u < g.num_left(); ++u) {
    for (VertexId nv = 0; nv < g.num_right(); ++nv) {
      EXPECT_EQ(r.HasEdge(u, nv), g.HasEdge(u, perm[nv]))
          << "u=" << u << " new=" << nv;
    }
  }
}

TEST(BipartiteGraphTest, RelabelIdentityIsNoop) {
  BipartiteGraph g = gen::ErdosRenyi(15, 12, 0.3, 7);
  std::vector<VertexId> identity(g.num_right());
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_EQ(g.RelabelRight(identity), g);
}

TEST(BipartiteGraphTest, RelabelRandomPermutationPreservesDegrees) {
  BipartiteGraph g = gen::PowerLaw(40, 25, 200, 0.8, 0.8, 3);
  std::vector<VertexId> perm(g.num_right());
  std::iota(perm.begin(), perm.end(), 0);
  util::Rng rng(5);
  for (size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.Below(i)]);
  }
  BipartiteGraph r = g.RelabelRight(perm);
  EXPECT_EQ(r.num_edges(), g.num_edges());
  for (VertexId nv = 0; nv < r.num_right(); ++nv) {
    EXPECT_EQ(r.RightDegree(nv), g.RightDegree(perm[nv]));
  }
}

TEST(BipartiteGraphTest, EmptyAndDegenerate) {
  BipartiteGraph empty;
  EXPECT_EQ(empty.num_left(), 0u);
  EXPECT_EQ(empty.num_right(), 0u);
  EXPECT_EQ(empty.num_edges(), 0u);
  EXPECT_EQ(empty.MaxLeftDegree(), 0u);

  BipartiteGraph no_edges = BipartiteGraph::FromEdges(3, 4, {});
  EXPECT_EQ(no_edges.num_left(), 3u);
  EXPECT_EQ(no_edges.LeftDegree(2), 0u);
  EXPECT_TRUE(no_edges.LeftNeighbors(0).empty());
}

TEST(BipartiteGraphTest, FromEdgesCheckedAcceptsValidEdges) {
  auto got = BipartiteGraph::FromEdgesChecked(4, 4, SampleGraph().ToEdges());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), SampleGraph());
}

TEST(BipartiteGraphTest, FromEdgesCheckedRejectsOutOfRange) {
  // Left id out of range.
  auto left_bad = BipartiteGraph::FromEdgesChecked(2, 3, {{2, 0}});
  ASSERT_FALSE(left_bad.ok());
  EXPECT_EQ(left_bad.status().code(), util::StatusCode::kInvalidArgument);
  // Right id out of range.
  auto right_bad = BipartiteGraph::FromEdgesChecked(2, 3, {{0, 3}});
  ASSERT_FALSE(right_bad.ok());
  EXPECT_EQ(right_bad.status().code(), util::StatusCode::kInvalidArgument);
  // Any edge into an empty side is out of range.
  auto empty_side = BipartiteGraph::FromEdgesChecked(0, 0, {{0, 0}});
  EXPECT_FALSE(empty_side.ok());
}

TEST(BipartiteGraphTest, FromEdgesCheckedEmptyAndZeroEdge) {
  auto empty = BipartiteGraph::FromEdgesChecked(0, 0, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value().num_left(), 0u);
  EXPECT_EQ(empty.value().num_edges(), 0u);

  auto no_edges = BipartiteGraph::FromEdgesChecked(5, 7, {});
  ASSERT_TRUE(no_edges.ok());
  EXPECT_EQ(no_edges.value().num_left(), 5u);
  EXPECT_EQ(no_edges.value().num_right(), 7u);
  EXPECT_EQ(no_edges.value().num_edges(), 0u);
  EXPECT_TRUE(no_edges.value().LeftNeighbors(4).empty());
}

TEST(BipartiteGraphTest, SummaryAndMemory) {
  BipartiteGraph g = SampleGraph();
  EXPECT_EQ(g.Summary(), "|U|=4 |V|=4 |E|=8");
  EXPECT_GT(g.MemoryBytes(), 0u);
}

// --- Statistics ------------------------------------------------------------

TEST(GraphStatsTest, MatchesHandComputedValues) {
  BipartiteGraph g = SampleGraph();
  GraphStats s = ComputeStats(g, /*with_two_hop=*/true);
  EXPECT_EQ(s.num_left, 4u);
  EXPECT_EQ(s.num_edges, 8u);
  EXPECT_EQ(s.max_left_degree, 4u);
  EXPECT_EQ(s.max_right_degree, 3u);
  // u3 sees v0..v3, whose neighbors are {u0,u1,u3}: N2(u3) = {u0,u1}.
  // u0 sees v0,v1 -> neighbors {u0,u1,u3}: N2(u0) = {u1,u3}. Max is 2.
  EXPECT_EQ(s.max_left_two_hop, 2u);
  // v1 sees u0,u1,u3 -> their neighborhoods cover v0..v3: N2(v1) = 3.
  EXPECT_EQ(s.max_right_two_hop, 3u);
  EXPECT_DOUBLE_EQ(s.avg_left_degree, 2.0);
}

TEST(GraphStatsTest, SkipTwoHop) {
  GraphStats s = ComputeStats(SampleGraph(), /*with_two_hop=*/false);
  EXPECT_EQ(s.max_left_two_hop, 0u);
  EXPECT_EQ(s.max_right_two_hop, 0u);
}

// --- Two-hop neighborhoods --------------------------------------------------

TEST(TwoHopTest, MatchesBruteForce) {
  BipartiteGraph g = gen::ErdosRenyi(25, 20, 0.15, 11);
  TwoHopScratch scratch(g.num_right());
  std::vector<VertexId> got;
  for (VertexId v = 0; v < g.num_right(); ++v) {
    scratch.RightTwoHop(g, v, &got);
    // Brute force: all w != v sharing a left neighbor.
    std::vector<VertexId> want;
    for (VertexId w = 0; w < g.num_right(); ++w) {
      if (w == v) continue;
      bool shares = false;
      for (VertexId u = 0; u < g.num_left(); ++u) {
        if (g.HasEdge(u, v) && g.HasEdge(u, w)) {
          shares = true;
          break;
        }
      }
      if (shares) want.push_back(w);
    }
    EXPECT_EQ(got, want) << "v=" << v;
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  }
}

TEST(TwoHopTest, ScratchIsReusable) {
  BipartiteGraph g = gen::ErdosRenyi(15, 15, 0.3, 12);
  TwoHopScratch scratch(g.num_right());
  std::vector<VertexId> first, second;
  scratch.RightTwoHop(g, 0, &first);
  scratch.RightTwoHop(g, 5, &second);
  std::vector<VertexId> again;
  scratch.RightTwoHop(g, 0, &again);
  EXPECT_EQ(first, again);
}

TEST(TwoHopTest, IsolatedVertexHasEmptyTwoHop) {
  BipartiteGraph g = BipartiteGraph::FromEdges(3, 3, {{0, 0}, {1, 1}});
  TwoHopScratch scratch(3);
  std::vector<VertexId> out;
  scratch.RightTwoHop(g, 2, &out);
  EXPECT_TRUE(out.empty());
  // v0 and v1 do not share neighbors either.
  scratch.RightTwoHop(g, 0, &out);
  EXPECT_TRUE(out.empty());
}

TEST(TwoHopTest, MaxTwoHopDegreeBothSides) {
  BipartiteGraph g = SampleGraph();
  EXPECT_EQ(MaxTwoHopDegreeLeft(g), 2u);
  EXPECT_EQ(MaxTwoHopDegreeRight(g), 3u);
}

}  // namespace
}  // namespace mbe
